(** The resident analysis daemon — see daemon.mli for the contract. *)

module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard
module Inject = Prax_guard.Inject
module Serve = Prax_serve.Serve
module Store = Prax_store.Store
module Analysis = Prax_analysis.Analysis

(* --- metrics (stats schema v5, docs/METRICS.md) -------------------------- *)

let m_accepted =
  Metrics.counter ~units:"connections" ~doc:"client connections accepted"
    "daemon.accepted"

let m_requests =
  Metrics.counter ~units:"requests" ~doc:"request lines received"
    "daemon.requests"

let m_shed_queue =
  Metrics.counter ~units:"requests"
    ~doc:"analyze requests shed because the job queue was full"
    "daemon.shed_queue"

let m_shed_rate =
  Metrics.counter ~units:"requests"
    ~doc:"analyze requests shed by a client's token bucket"
    "daemon.shed_rate"

let m_rejected =
  Metrics.counter ~units:"frames"
    ~doc:"malformed or oversized request frames rejected"
    "daemon.rejected_bad_frame"

let m_warm =
  Metrics.counter ~units:"requests"
    ~doc:"analyze requests answered from the resident result cache"
    "daemon.warm_hits"

let m_cold_ms =
  Metrics.counter ~units:"ms"
    ~doc:"cumulative wall-clock of fleet-computed (cold) answers"
    "daemon.cold_ms"

let m_warm_ms =
  Metrics.counter ~units:"ms"
    ~doc:"cumulative wall-clock of cache-answered (warm) requests"
    "daemon.warm_ms"

let m_drain_ms =
  Metrics.counter ~units:"ms" ~doc:"wall-clock spent in graceful drain"
    "daemon.drain_ms"

let m_degraded =
  Metrics.counter ~units:"requests"
    ~doc:"analyze requests admitted at a reduced pressure-tier budget"
    "daemon.degraded"

let m_evictions =
  Metrics.counter ~units:"entries"
    ~doc:"resident cache entries evicted by the LRU bound"
    "daemon.cache_evictions"

let m_chaos =
  Metrics.counter ~units:"faults"
    ~doc:"chaos-plan faults injected (PRAX_INJECT_DAEMON / --chaos)"
    "daemon.chaos_injected"

let g_queue =
  Metrics.gauge ~units:"jobs" ~doc:"analyze jobs queued for a worker slot"
    "daemon.queue_depth"

let g_inflight =
  Metrics.gauge ~units:"jobs" ~doc:"analyze jobs running in workers"
    "daemon.inflight"

let g_tier =
  Metrics.gauge ~units:"tier"
    ~doc:"pressure tier of the most recent admission (0 = full budget)"
    "daemon.tier"

(* --- configuration ------------------------------------------------------- *)

type config = {
  socket_path : string;
  max_queue : int;
  rate : float;
  burst : float;
  max_request_bytes : int;
  drain_deadline : float;
  store_dir : string option;
  incremental : bool;
  cache_entries : int;
  cache_bytes : int;
  chaos : Inject.daemon_plan;
  serve : Serve.config;
}

let default_config ~socket_path =
  {
    socket_path;
    max_queue = 32;
    rate = 0.;
    burst = 8.;
    max_request_bytes = 8 * 1024 * 1024;
    drain_deadline = 5.;
    store_dir = None;
    incremental = false;
    cache_entries = 512;
    cache_bytes = 64 * 1024 * 1024;
    chaos = [];
    serve = Serve.default_config;
  }

(* --- state ---------------------------------------------------------------- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_in : Buffer.t;
  mutable c_out : string;  (* bytes not yet written *)
  mutable c_closing : bool;  (* close once c_out drains *)
  mutable c_dead : bool;
  mutable c_reset_armed : bool;
      (* chaos: truncate the next response mid-frame and close *)
}

(* an admitted analyze job waiting for (or running in) the fleet *)
type pending = {
  jb_conn : int;
  jb_reqid : Metrics.json;
  jb_analysis : Analysis.t;
  jb_config : Analysis.config;
  jb_input : string;
  jb_source : string;
  jb_cache_key : string;
  jb_store_key : Store.key;
  jb_started : float;
  jb_tier : Pressure.tier;  (* the admission tier; tags the response *)
  jb_fault : Inject.worker_fault option;  (* chaos: planted on attempt 1 *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  store : Store.t option;
  admission : Admission.t;
  jobs : (string, pending) Hashtbl.t;
  cache : Lru.t;  (* resident complete results, entry+byte bounded *)
  mutable pool : Serve.Pool.t option;  (* built in [run] (needs self) *)
  mutable conns : conn list;
  mutable next_conn : int;
  mutable seq : int;
  mutable analyze_seq : int;  (* chaos-plan ordinal: analyze arrivals *)
  mutable draining : bool;
  mutable drain_started : float;
}

let socket_path d = d.config.socket_path
let pid_path d = d.config.socket_path ^ ".pid"

exception Already_running of string

(* --- startup: stale-socket and pidfile recovery --------------------------- *)

(* A SIGKILLed daemon leaves its socket and pidfile behind; binding
   would fail with EADDRINUSE forever.  A connect probe distinguishes
   the cases: a live daemon accepts, a stale socket refuses. *)
let probe path =
  if not (Sys.file_exists path) then `Absent
  else
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Absent
        | exception Unix.Unix_error _ -> `Not_a_socket)

let listen (config : config) : t =
  let path = config.socket_path in
  (match probe path with
  | `Absent -> ()
  | `Live -> raise (Already_running path)
  | `Stale ->
      (* stale socket from a killed predecessor: sweep it and its
         pidfile *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      (try Unix.unlink (path ^ ".pid") with Unix.Unix_error _ -> ())
  | `Not_a_socket ->
      raise (Sys_error (path ^ ": exists and is not a praxd socket")));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let oc = open_out (path ^ ".pid") in
  output_string oc (string_of_int (Unix.getpid ()) ^ "\n");
  close_out oc;
  {
    config;
    listen_fd = fd;
    store = Option.map Store.open_dir config.store_dir;
    admission = Admission.create ~rate:config.rate ~burst:config.burst;
    jobs = Hashtbl.create 64;
    cache =
      Lru.create
        ~on_evict:(fun ~key:_ -> Metrics.incr m_evictions)
        ~max_entries:config.cache_entries ~max_bytes:config.cache_bytes ();
    pool = None;
    conns = [];
    next_conn = 0;
    seq = 0;
    analyze_seq = 0;
    draining = false;
    drain_started = 0.;
  }

(* --- responses ------------------------------------------------------------ *)

let send conn line =
  if not conn.c_dead then
    if conn.c_reset_armed then begin
      (* chaos conn-reset: the response was generated (the
         one-response-per-request invariant holds daemon-side) but only
         half its bytes reach the wire before the connection closes —
         the client must classify this as a protocol error, never as a
         result *)
      conn.c_reset_armed <- false;
      Metrics.incr m_chaos;
      conn.c_out <- conn.c_out ^ String.sub line 0 (String.length line / 2);
      conn.c_closing <- true
    end
    else conn.c_out <- conn.c_out ^ line ^ "\n"

let respond conn ~id ~status extra = send conn (Wire.response ~id ~status extra)

let conn_by_id d cid = List.find_opt (fun c -> c.c_id = cid) d.conns

(* --- the warm result cache ------------------------------------------------ *)

let cache_key (k : Store.key) =
  String.concat "\x00"
    [ k.Store.analysis; k.Store.source_digest; k.Store.config;
      string_of_int k.Store.schema_version ]

let warm_lookup d (p : string) (k : Store.key) =
  match Lru.find d.cache p with
  | Some payload -> Some payload
  | None -> (
      match Option.bind d.store (fun s -> Store.load s k) with
      | Some payload ->
          Lru.put d.cache p payload;
          Some payload
      | None -> None)

let cache_put d (p : string) (k : Store.key) payload =
  Lru.put d.cache p payload;
  Option.iter (fun s -> Store.save s k payload) d.store

(* --- request handling ----------------------------------------------------- *)

let report_field payload =
  match Metrics.json_of_string payload with
  | j -> [ ("report", j) ]
  | exception _ -> [ ("report", Metrics.Str payload) ]

let stats_json d =
  Metrics.set g_queue
    (match d.pool with Some p -> Serve.Pool.pending p | None -> 0);
  Metrics.set g_inflight
    (match d.pool with Some p -> Serve.Pool.inflight p | None -> 0);
  Metrics.stats_doc ~tool:"praxd" ~analysis:"daemon"
    ~input:d.config.socket_path (Metrics.snapshot ())

let begin_drain d =
  if not d.draining then begin
    d.draining <- true;
    d.drain_started <- Unix.gettimeofday ();
    (* stop accepting at once: close and remove the socket so new
       connects fail fast instead of queueing in the backlog *)
    (try Unix.close d.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink d.config.socket_path with Unix.Unix_error _ -> ()
  end

let ms_of_seconds s = int_of_float (Float.ceil (s *. 1000.))

(* Chaos plan: fire the faults scheduled for this analyze arrival
   (1-based ordinal, counted before any admission decision so a plan
   replays identically against the same request sequence).  Returns the
   worker fault to plant on this request's job, if any. *)
let apply_chaos d conn : Inject.worker_fault option =
  match d.config.chaos with
  | [] -> None
  | plan ->
      let worker_fault = ref None in
      List.iter
        (fun (fault : Inject.daemon_fault) ->
          match fault with
          | Inject.Worker wf -> worker_fault := Some wf
          | Inject.Conn_reset ->
              (* fires (and is counted) in [send], on this request's
                 own response *)
              conn.c_reset_armed <- true
          | Inject.Store_write sf ->
              Metrics.incr m_chaos;
              Store.arm_write_fault
                (match sf with
                | Inject.Enospc -> Store.Fault_enospc
                | Inject.Short_write -> Store.Fault_short_write)
          | Inject.Drain_now ->
              Metrics.incr m_chaos;
              begin_drain d)
        (Inject.daemon_faults_at plan d.analyze_seq);
      !worker_fault

let handle_analyze d conn ~id ~client ~analysis ~input ~source ~config =
  d.analyze_seq <- d.analyze_seq + 1;
  let chaos_fault = apply_chaos d conn in
  if d.draining then
    respond conn ~id ~status:"draining"
      [ ("reason", Metrics.Str "daemon is draining") ]
  else
    let client =
      Option.value client ~default:(Printf.sprintf "conn-%d" conn.c_id)
    in
    let now = Unix.gettimeofday () in
    let pool = Option.get d.pool in
    if not (Admission.admit d.admission ~client ~now) then begin
      Metrics.incr m_shed_rate;
      respond conn ~id ~status:"overloaded"
        [
          ("reason", Metrics.Str "rate_limited");
          ("client", Metrics.Str client);
          ( "retry_after_ms",
            Metrics.Int
              (ms_of_seconds (Admission.retry_after d.admission ~client ~now))
          );
        ]
    end
    else
      (* pressure-tiered admission (docs/ROBUSTNESS.md): below the shed
         point the request is admitted at the occupancy tier's budget
         scale — degrade, don't drop *)
      match
        Pressure.decide ~max_queue:d.config.max_queue
          ~jobs:d.config.serve.Serve.jobs ~pending:(Serve.Pool.pending pool)
          ~inflight:(Serve.Pool.inflight pool)
      with
      | Pressure.Shed { retry_after_ms } ->
          Metrics.incr m_shed_queue;
          respond conn ~id ~status:"overloaded"
            [
              ("reason", Metrics.Str "queue_full");
              ("queue_depth", Metrics.Int (Serve.Pool.pending pool));
              ("max_queue", Metrics.Int d.config.max_queue);
              ("retry_after_ms", Metrics.Int retry_after_ms);
            ]
      | Pressure.Admit tier -> (
          Metrics.set g_tier tier.Pressure.level;
          match Analysis.find analysis with
          | None ->
              respond conn ~id ~status:"error"
                [
                  ( "reason",
                    Metrics.Str
                      (Printf.sprintf "unknown analysis %s (registered: %s)"
                         analysis
                         (String.concat ", " (Analysis.names ()))) );
                ]
          | Some a -> (
              match
                Analysis.merge_config ~defaults:a.Analysis.defaults config
              with
              | Error msg ->
                  respond conn ~id ~status:"error"
                    [ ("reason", Metrics.Str msg) ]
              | Ok cfg -> (
                  let store_key =
                    {
                      Store.analysis = a.Analysis.name;
                      source_digest = Store.digest_source source;
                      config = Analysis.config_to_string cfg;
                      schema_version = Analysis.report_schema_version;
                    }
                  in
                  let ckey = cache_key store_key in
                  match warm_lookup d ckey store_key with
                  | Some payload ->
                      Metrics.incr m_warm;
                      Metrics.add m_warm_ms
                        (int_of_float ((Unix.gettimeofday () -. now) *. 1000.));
                      respond conn ~id ~status:"cached" (report_field payload)
                  | None ->
                      if tier.Pressure.level > 0 then Metrics.incr m_degraded;
                      (match chaos_fault with
                      | Some _ -> Metrics.incr m_chaos
                      | None -> ());
                      d.seq <- d.seq + 1;
                      let job =
                        Printf.sprintf "%s:%s#%d" a.Analysis.name input d.seq
                      in
                      Hashtbl.replace d.jobs job
                        {
                          jb_conn = conn.c_id;
                          jb_reqid = id;
                          jb_analysis = a;
                          jb_config = cfg;
                          jb_input = input;
                          jb_source = source;
                          jb_cache_key = ckey;
                          jb_store_key = store_key;
                          jb_started = now;
                          jb_tier = tier;
                          jb_fault = chaos_fault;
                        };
                      Serve.Pool.submit pool
                        ~budget_scale:tier.Pressure.scale job)))

let handle_line d conn line =
  Metrics.incr m_requests;
  match Wire.parse_request line with
  | Error reason ->
      Metrics.incr m_rejected;
      respond conn ~id:Metrics.Null ~status:"rejected"
        [ ("reason", Metrics.Str reason) ]
  | Ok { Wire.id; client; op } -> (
      match op with
      | Wire.Ping ->
          respond conn ~id ~status:"ok"
            [ ("pid", Metrics.Int (Unix.getpid ())) ]
      | Wire.Stats -> respond conn ~id ~status:"ok" [ ("stats", stats_json d) ]
      | Wire.Drain ->
          respond conn ~id ~status:"ok" [ ("draining", Metrics.Bool true) ];
          begin_drain d
      | Wire.Analyze { analysis; input; source; config } ->
          handle_analyze d conn ~id ~client ~analysis ~input ~source ~config)

(* Split complete lines off a connection's input buffer; an over-limit
   line — terminated or not — is a framing violation: reject and close
   (the stream position can no longer be trusted). *)
let process_input d conn =
  let s = Buffer.contents conn.c_in in
  let n = String.length s in
  let pos = ref 0 in
  (try
     while !pos < n do
       match String.index_from_opt s !pos '\n' with
       | Some i when i - !pos <= d.config.max_request_bytes ->
           handle_line d conn (String.sub s !pos (i - !pos));
           pos := i + 1
       | Some _ | None ->
           if n - !pos > d.config.max_request_bytes then begin
             Metrics.incr m_rejected;
             respond conn ~id:Metrics.Null ~status:"rejected"
               [
                 ("reason", Metrics.Str "oversized frame");
                 ("max_request_bytes", Metrics.Int d.config.max_request_bytes);
               ];
             conn.c_closing <- true;
             Buffer.clear conn.c_in;
             pos := n;
             raise Exit
           end
           else raise Exit (* incomplete line: wait for more bytes *)
     done
   with Exit -> ());
  if !pos > 0 && not conn.c_closing then begin
    let rest = String.sub s !pos (n - !pos) in
    Buffer.clear conn.c_in;
    Buffer.add_string conn.c_in rest
  end

(* --- fleet results back to clients ---------------------------------------- *)

let finish_report d (r : Serve.report) =
  match Hashtbl.find_opt d.jobs r.Serve.job with
  | None -> ()
  | Some p -> (
      Hashtbl.remove d.jobs r.Serve.job;
      let conn = conn_by_id d p.jb_conn in
      let respond_opt ~status extra =
        match conn with
        | Some c when not c.c_dead -> respond c ~id:p.jb_reqid ~status extra
        | _ -> ()  (* client went away; the result still warmed the cache *)
      in
      match r.Serve.outcome with
      | Serve.Done { payload; partial; _ } ->
          if partial = None then cache_put d p.jb_cache_key p.jb_store_key payload;
          Metrics.add m_cold_ms
            (int_of_float ((Unix.gettimeofday () -. p.jb_started) *. 1000.));
          let status, extra =
            match partial with
            | None -> ("complete", [])
            | Some reason -> ("partial", [ ("reason", Metrics.Str reason) ])
          in
          let tier_fields =
            if p.jb_tier.Pressure.level > 0 then
              [
                ("degraded", Metrics.Bool true);
                ("tier", Metrics.Int p.jb_tier.Pressure.level);
                ("tier_label", Metrics.Str p.jb_tier.Pressure.label);
              ]
            else []
          in
          respond_opt ~status
            (extra @ tier_fields
            @ [ ("attempts", Metrics.Int r.Serve.attempts) ]
            @ report_field payload)
      | Serve.Crashed { what; stderr; _ } ->
          respond_opt ~status:"crashed"
            ([
               ("error", Metrics.Str what);
               ("attempts", Metrics.Int r.Serve.attempts);
             ]
            @
            if String.equal stderr "" then []
            else [ ("stderr", Metrics.Str stderr) ]))

(* --- the event loop ------------------------------------------------------- *)

let read_chunk = Bytes.create 65536

let accept_ready d =
  let rec loop () =
    match Unix.accept ~cloexec:true d.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Metrics.incr m_accepted;
        d.next_conn <- d.next_conn + 1;
        d.conns <-
          {
            c_id = d.next_conn;
            c_fd = fd;
            c_in = Buffer.create 1024;
            c_out = "";
            c_closing = false;
            c_dead = false;
            c_reset_armed = false;
          }
          :: d.conns;
        loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

let read_conn d conn =
  match Unix.read conn.c_fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> conn.c_dead <- true
  | n ->
      Buffer.add_subbytes conn.c_in read_chunk 0 n;
      process_input d conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> conn.c_dead <- true

let write_conn conn =
  if (not conn.c_dead) && conn.c_out <> "" then
    match
      Unix.single_write_substring conn.c_fd conn.c_out 0
        (String.length conn.c_out)
    with
    | n ->
        conn.c_out <-
          String.sub conn.c_out n (String.length conn.c_out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> conn.c_dead <- true

let close_conn conn =
  conn.c_dead <- true;
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

let run ?on_ready (d : t) : unit =
  (* the worker body runs in the forked child and inherits the pending
     table (and the whole warm interned heap) copy-on-write *)
  let worker ~job ~attempt ~guard =
    (match Inject.worker_fault_of_env ~job ~attempt () with
    | Some fault -> Inject.apply_worker_fault fault
    | None -> ());
    let p = Hashtbl.find d.jobs job in
    (* chaos-plan worker faults fire on the first attempt only, so the
       pool's retry ladder absorbs them and the client still gets its
       one structured response *)
    if attempt = 1 then Option.iter Inject.apply_worker_fault p.jb_fault;
    let rep =
      (* edit-aware dispatch: under [incremental] the worker consults
         the per-SCC fragment cache before evaluating, splicing
         unchanged cones' tables back.  Cross-request reuse needs the
         persistent store — workers are forked, so a memory cache dies
         with the child; with [store_dir] the fragments live under
         [incr/<analysis>/] next to the warm result snapshots and every
         later fork (or a cold CLI run) replays them.  The report is
         byte-identical either way, so the resident result cache and
         the store snapshots need no new key component. *)
      match p.jb_analysis.Analysis.incremental with
      | Some inc when d.config.incremental ->
          let cache =
            match d.store with
            | Some s ->
                Prax_incr.Incr.cache_of_store s
                  ~analysis:p.jb_analysis.Analysis.name
                  ~table_class:(inc.Analysis.table_class p.jb_config)
            | None -> Analysis.memory_cache ()
          in
          inc.Analysis.run_incr ~config:p.jb_config ~guard ~cache p.jb_source
      | _ -> p.jb_analysis.Analysis.run ~config:p.jb_config ~guard p.jb_source
    in
    let payload =
      Metrics.json_to_string (Analysis.report_to_json ~input:p.jb_input rep)
    in
    match rep.Analysis.status with
    | Guard.Complete -> (Serve.Complete, payload)
    | Guard.Partial { reason; _ } ->
        (Serve.Partial_result (Guard.reason_to_string reason), payload)
  in
  (* children must not hold the daemon's sockets open: a worker
     outliving a client would postpone that client's EOF *)
  let on_child () =
    (try Unix.close d.listen_fd with Unix.Unix_error _ -> ());
    List.iter
      (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
      d.conns
  in
  let pool = Serve.Pool.create ~config:d.config.serve ~on_child ~worker () in
  d.pool <- Some pool;
  let sig_requested = ref false in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> sig_requested := true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> sig_requested := true))
  in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Fun.protect ~finally:restore (fun () ->
      (match on_ready with Some f -> f () | None -> ());
      let finished = ref false in
      while not !finished do
        if !sig_requested then begin_drain d;
        let now = Unix.gettimeofday () in
        let pool_fds = Serve.Pool.fds pool in
        let read_fds =
          (if d.draining then [] else [ d.listen_fd ])
          @ List.filter_map
              (fun c ->
                if c.c_dead || c.c_closing then None else Some c.c_fd)
              d.conns
          @ pool_fds
        in
        let write_fds =
          List.filter_map
            (fun c -> if (not c.c_dead) && c.c_out <> "" then Some c.c_fd else None)
            d.conns
        in
        let wake =
          let candidates =
            (now +. 0.5)
            :: Option.to_list (Serve.Pool.next_wake pool)
            @
            if d.draining then [ d.drain_started +. d.config.drain_deadline ]
            else []
          in
          List.fold_left Float.min (List.hd candidates) (List.tl candidates)
        in
        let timeout = Float.max 0.01 (wake -. now) in
        let readable, writable, _ =
          match Unix.select read_fds write_fds [] timeout with
          | r -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if (not d.draining) && List.memq d.listen_fd readable then
          accept_ready d;
        List.iter
          (fun c ->
            if (not c.c_dead) && List.memq c.c_fd readable then read_conn d c)
          d.conns;
        let pool_readable = List.filter (fun fd -> List.mem fd pool_fds) readable in
        List.iter (finish_report d) (Serve.Pool.step pool ~readable:pool_readable);
        List.iter
          (fun c -> if List.memq c.c_fd writable then write_conn c)
          d.conns;
        (* opportunistic flush for responses generated this round *)
        List.iter write_conn d.conns;
        (* retire finished connections *)
        let gone, live =
          List.partition
            (fun c -> c.c_dead || (c.c_closing && c.c_out = ""))
            d.conns
        in
        List.iter close_conn gone;
        d.conns <- live;
        Metrics.set g_queue (Serve.Pool.pending pool);
        Metrics.set g_inflight (Serve.Pool.inflight pool);
        if d.draining then
          if Serve.Pool.idle pool then finished := true
          else if
            Unix.gettimeofday () > d.drain_started +. d.config.drain_deadline
          then begin
            (* deadline: the stragglers are killed, their clients get a
               structured crash, and the daemon still exits cleanly *)
            let abandoned = Serve.Pool.kill_all pool in
            List.iter
              (fun job ->
                match Hashtbl.find_opt d.jobs job with
                | None -> ()
                | Some p -> (
                    Hashtbl.remove d.jobs job;
                    match conn_by_id d p.jb_conn with
                    | Some c when not c.c_dead ->
                        respond c ~id:p.jb_reqid ~status:"crashed"
                          [
                            ( "error",
                              Metrics.Str "killed by drain deadline" );
                          ]
                    | _ -> ()))
              abandoned;
            finished := true
          end
      done;
      (* drain epilogue: flush what we can, tear everything down *)
      List.iter write_conn d.conns;
      List.iter close_conn d.conns;
      d.conns <- [];
      if not d.draining then begin
        (* natural exit without a drain request cleans up the same way *)
        try Unix.close d.listen_fd with Unix.Unix_error _ -> ()
      end;
      (try Unix.unlink d.config.socket_path with Unix.Unix_error _ -> ());
      (try Unix.unlink (pid_path d) with Unix.Unix_error _ -> ());
      if d.draining then
        Metrics.add m_drain_ms
          (int_of_float ((Unix.gettimeofday () -. d.drain_started) *. 1000.)))
