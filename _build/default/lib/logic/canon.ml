(** Canonical forms for variant checking.

    Tabled evaluation keys its call and answer tables on the *variant*
    class of a term: two terms are variants iff they are identical up to a
    renaming of variables.  We canonicalize by renumbering variables
    0,1,2,… in order of first occurrence; variant checking is then
    structural equality of canonical forms, and canonical forms hash
    consistently, so they serve directly as hash-table keys. *)

(** [canonical s t] resolves [t] under [s] and renumbers its free
    variables in first-occurrence order. *)
let canonical (s : Subst.t) (t : Term.t) : Term.t =
  let resolved = Subst.resolve s t in
  let tbl = Hashtbl.create 8 in
  let next = ref 0 in
  Term.map_vars
    (fun i ->
      match Hashtbl.find_opt tbl i with
      | Some v -> v
      | None ->
          let v = Term.Var !next in
          incr next;
          Hashtbl.add tbl i v;
          v)
    resolved

(** Renumber an already-resolved term. *)
let of_term (t : Term.t) : Term.t = canonical Subst.empty t

let variant t1 t2 = Term.equal (of_term t1) (of_term t2)

(** A canonical term's variables are 0..n-1; rename them to globally fresh
    variables before resolving against live terms. *)
let instantiate (t : Term.t) : Term.t = Term.rename t

module Key = struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end

module Tbl = Hashtbl.Make (Key)
