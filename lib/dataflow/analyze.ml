(** Demand-driven dataflow analysis on the tabled engine, plus a direct
    (non-logic-programming) reference implementation of reaching
    definitions used to validate the declarative route and to play the
    role of the special-purpose C analyzer of the Section 7 comparison. *)

open Prax_logic
open Prax_tabling
module Metrics = Prax_metrics.Metrics

(* Phase timers (docs/METRICS.md): encoding the CFG as clauses, and
   demand-driven query evaluation. *)
let t_encode =
  Metrics.timer ~doc:"dataflow: encode the CFG program as clauses"
    "dataflow.encode"

let t_query =
  Metrics.timer ~doc:"dataflow: tabled evaluation of demand queries"
    "dataflow.query"

type t = { engine : Engine.t; program : Cfg.program }

let make ?guard (p : Cfg.program) : t =
  Metrics.time t_encode (fun () ->
      let db = Database.create () in
      Database.load_clauses db (Encode.program p);
      { engine = Engine.create ?guard db; program = p })

let query t goal_src =
  Metrics.time t_query (fun () ->
      Engine.query t.engine (Parser.parse_term goal_src))

(** Does the definition of [var] at node [d] reach node [n]?  A single
    demand: tabled evaluation explores only what the query needs. *)
let reaches t ~var ~def ~node : bool =
  let goal =
    Term.mkl "reach" [ Encode.def_term var def; Term.int node ]
  in
  Metrics.time t_query (fun () -> Engine.query t.engine goal <> [])

(** All definitions reaching [node] — the exhaustive question. *)
let reaching_at t ~node : (string * int) list =
  let v = Term.fresh_var () and m = Term.fresh_var () in
  let goal = Term.mkl "reach" [ Term.mkl "def" [ v; m ]; Term.int node ] in
  let out = ref [] in
  Metrics.time t_query (fun () ->
      Engine.run t.engine goal (fun s ->
          match (Subst.walk s v, Subst.walk s m) with
          | Term.Atom var, Term.Int d -> out := (var, d) :: !out
          | _ -> ()));
  List.sort_uniq compare !out

let live_at t ~node : string list =
  let v = Term.fresh_var () in
  let goal = Term.mkl "livein" [ v; Term.int node ] in
  let out = ref [] in
  Metrics.time t_query (fun () ->
      Engine.run t.engine goal (fun s ->
          match Subst.walk s v with
          | Term.Atom var -> out := var :: !out
          | _ -> ()));
  List.sort_uniq compare !out

let def_use_chains t : ((string * int) * int) list =
  let v = Term.fresh_var () and m = Term.fresh_var () and u = Term.fresh_var () in
  let goal = Term.mkl "du" [ Term.mkl "def" [ v; m ]; u ] in
  let out = ref [] in
  Metrics.time t_query (fun () ->
      Engine.run t.engine goal (fun s ->
          match (Subst.walk s v, Subst.walk s m, Subst.walk s u) with
          | Term.Atom var, Term.Int d, Term.Int usenode ->
              out := ((var, d), usenode) :: !out
          | _ -> ()));
  List.sort_uniq compare !out

let stats t = Engine.stats t.engine

(* --- reference implementation ------------------------------------------- *)

(** Classic worklist reaching-definitions over the same graph (with the
    same interprocedural call/return edges), entirely outside the logic
    engine.  [reference_reaching_at p node] must agree with
    {!reaching_at}; the tests check this on random ladders. *)
let reference_reaching (p : Cfg.program) : (int, (string * int) list) Hashtbl.t
    =
  (* materialize nodes and edges exactly as the encoding does *)
  let nodes =
    List.concat_map (fun (pr : Cfg.proc) -> pr.Cfg.nodes) p
  in
  let edges = ref [] in
  List.iter
    (fun (pr : Cfg.proc) ->
      List.iter
        (fun (m, n) ->
          match (Cfg.node_of pr m).Cfg.stmt with
          | Cfg.Call callee -> (
              match Cfg.find_proc p callee with
              | Some target ->
                  edges := (m, target.Cfg.entry) :: (target.Cfg.exit, n) :: !edges
              | None -> edges := (m, n) :: !edges)
          | _ -> edges := (m, n) :: !edges)
        pr.Cfg.edges)
    p;
  let stmt_of = Hashtbl.create 64 in
  List.iter (fun (n : Cfg.node) -> Hashtbl.replace stmt_of n.Cfg.id n.Cfg.stmt) nodes;
  (* in[n] = defs reaching the *entry* of n; the logic encoding's
     reach(D, N) is exactly this *)
  let in_ : (int, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n : Cfg.node) -> Hashtbl.replace in_ n.Cfg.id []) nodes;
  let out_of id =
    let stmt = Hashtbl.find stmt_of id in
    let killed = Cfg.defs stmt in
    let survived =
      List.filter
        (fun (v, _) -> not (List.mem v killed))
        (Hashtbl.find in_ id)
    in
    List.map (fun v -> (v, id)) (Cfg.defs stmt) @ survived
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (m, n) ->
        let flow = out_of m in
        let cur = Hashtbl.find in_ n in
        let extra = List.filter (fun d -> not (List.mem d cur)) flow in
        if extra <> [] then begin
          Hashtbl.replace in_ n (extra @ cur);
          changed := true
        end)
      !edges
  done;
  in_

let reference_reaching_at (p : Cfg.program) ~node : (string * int) list =
  match Hashtbl.find_opt (reference_reaching p) node with
  | Some l -> List.sort_uniq compare l
  | None -> []
