test/test_ground.ml: Alcotest Analyze Array Bf Database List Parser Prax_ground Prax_logic Prax_prop Printf Qm Sld String Subst Term
