(** Implementation of the unified analysis pipeline: shared phase
    skeleton, generic reports under the versioned [prax.report] schema,
    and the process-wide analysis registry.  See analysis.mli. *)

module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

let report_schema_name = "prax.report"
let report_schema_version = 1

(* --- monotonic phase clock ---------------------------------------------- *)

let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* --- the shared phase skeleton ------------------------------------------ *)

type phases = { preproc : float; analysis : float; collection : float }

let total p = p.preproc +. p.analysis +. p.collection
let add_preproc p dt = { p with preproc = p.preproc +. dt }

let phased ~timers:(t_pre, t_eval, t_col) ~pre ~eval ~collect () =
  let t0 = now () in
  let a = Metrics.time t_pre pre in
  let t1 = now () in
  let b = Metrics.time t_eval (fun () -> eval a) in
  let t2 = now () in
  let c = Metrics.time t_col (fun () -> collect a b) in
  let t3 = now () in
  ( { preproc = t1 -. t0; analysis = t2 -. t1; collection = t3 -. t2 },
    a,
    b,
    c )

let phase_timers ?doc prefix =
  let mk phase =
    let doc = Option.map (fun d -> d ^ ": " ^ phase) doc in
    Metrics.timer ?doc (prefix ^ "." ^ phase)
  in
  (mk "preprocess", mk "evaluate", mk "collect")

(* --- engine counts ------------------------------------------------------- *)

type engine_counts = {
  calls : int;
  table_entries : int;
  answers : int;
  duplicates : int;
  resumptions : int;
  forced : int;
}

let engine_counts_to_json (e : engine_counts) : Metrics.json =
  Metrics.Obj
    [
      ("calls", Metrics.Int e.calls);
      ("table_entries", Metrics.Int e.table_entries);
      ("answers", Metrics.Int e.answers);
      ("duplicates", Metrics.Int e.duplicates);
      ("resumptions", Metrics.Int e.resumptions);
      ("forced", Metrics.Int e.forced);
    ]

let engine_counts_of_json j =
  let get k =
    match Metrics.member k j with Some (Metrics.Int n) -> n | _ -> 0
  in
  {
    calls = get "calls";
    table_entries = get "table_entries";
    answers = get "answers";
    duplicates = get "duplicates";
    resumptions = get "resumptions";
    forced = get "forced";
  }

(* --- configurations ------------------------------------------------------ *)

type config = (string * string) list

exception Config_error of string

let config_get cfg key =
  match List.assoc_opt key cfg with
  | Some v -> v
  | None -> raise (Config_error (Printf.sprintf "configuration key %s unset" key))

let config_int cfg key =
  let v = config_get cfg key in
  match int_of_string_opt v with
  | Some n -> n
  | None ->
      raise
        (Config_error (Printf.sprintf "%s expects an integer, got %S" key v))

let config_bool cfg key =
  match config_get cfg key with
  | "true" -> true
  | "false" -> false
  | v ->
      raise
        (Config_error
           (Printf.sprintf "%s expects true or false, got %S" key v))

let config_enum cfg key choices =
  let v = config_get cfg key in
  if List.mem v choices then v
  else
    raise
      (Config_error
         (Printf.sprintf "%s expects one of %s, got %S" key
            (String.concat "|" choices) v))

let merge_config ~defaults overrides =
  match
    List.find_opt (fun (k, _) -> not (List.mem_assoc k defaults)) overrides
  with
  | Some (k, _) ->
      Error
        (Printf.sprintf "unknown configuration key %s (accepted: %s)" k
           (String.concat ", " (List.map fst defaults)))
  | None ->
      (* later assignments win: reverse before first-match lookup *)
      let overrides = List.rev overrides in
      Ok
        (List.map
           (fun (k, d) ->
             (k, Option.value (List.assoc_opt k overrides) ~default:d))
           defaults)

let assignments_of_string s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match String.index_opt p '=' with
        | Some i when i > 0 ->
            let k = String.sub p 0 i in
            let v = String.sub p (i + 1) (String.length p - i - 1) in
            go ((k, v) :: acc) rest
        | _ -> Error (Printf.sprintf "expected KEY=VALUE, got %S" p))
  in
  go [] parts

let config_to_string cfg =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) cfg)

let config_to_json cfg : Metrics.json =
  Metrics.Obj (List.map (fun (k, v) -> (k, Metrics.Str v)) cfg)

let config_of_json = function
  | Metrics.Obj fields ->
      List.filter_map
        (fun (k, v) ->
          match v with Metrics.Str s -> Some (k, s) | _ -> None)
        fields
  | _ -> []

(* --- generic reports ----------------------------------------------------- *)

type report = {
  analysis : string;
  config : config;
  phases : phases;
  status : Guard.status;
  table_bytes : int;
  clause_count : int;
  source_lines : int option;
  engine : engine_counts option;
  payload_text : string;
  payload_json : Metrics.json;
}

let timings_line (r : report) =
  Printf.sprintf
    "phases: preprocess %.4fs, analysis %.4fs, collection %.4fs, total \
     %.4fs; table space %d bytes%s"
    r.phases.preproc r.phases.analysis r.phases.collection (total r.phases)
    r.table_bytes
    (if r.clause_count > 0 then Printf.sprintf "; %d clauses" r.clause_count
     else "")

let phases_to_json p : Metrics.json =
  Metrics.Obj
    [
      ("preprocess", Metrics.Float p.preproc);
      ("evaluate", Metrics.Float p.analysis);
      ("collect", Metrics.Float p.collection);
      ("total_seconds", Metrics.Float (total p));
    ]

let report_to_json ?input (r : report) : Metrics.json =
  let open Metrics in
  Obj
    ([
       ("schema", Str report_schema_name);
       ("schema_version", Int report_schema_version);
       ("analysis", Str r.analysis);
     ]
    @ (match input with Some i -> [ ("input", Str i) ] | None -> [])
    @ [ ("config", config_to_json r.config) ]
    @ Guard.status_json_fields r.status
    @ [
        ("phases", phases_to_json r.phases);
        ("table_bytes", Int r.table_bytes);
        ("clause_count", Int r.clause_count);
      ]
    @ (match r.source_lines with
      | Some n -> [ ("source_lines", Int n) ]
      | None -> [])
    @ (match r.engine with
      | Some e -> [ ("engine", engine_counts_to_json e) ]
      | None -> [])
    @ [ ("text", Str r.payload_text); ("result", r.payload_json) ])

type parsed_report = {
  p_analysis : string;
  p_input : string option;
  p_config : config;
  p_status : string;
  p_phases : phases;
  p_table_bytes : int;
  p_clause_count : int;
  p_source_lines : int option;
  p_engine : engine_counts option;
  p_text : string;
  p_result : Metrics.json;
}

let report_of_json (doc : Metrics.json) : (parsed_report, string) result =
  let str k =
    match Metrics.member k doc with
    | Some (Metrics.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "prax.report document lacks %s" k)
  in
  let int k =
    match Metrics.member k doc with
    | Some (Metrics.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "prax.report document lacks %s" k)
  in
  let float_of = function
    | Metrics.Float f -> f
    | Metrics.Int n -> float_of_int n
    | _ -> 0.
  in
  let ( let* ) = Result.bind in
  let* schema = str "schema" in
  if not (String.equal schema report_schema_name) then
    Error (Printf.sprintf "not a %s document: %s" report_schema_name schema)
  else
    let* version = int "schema_version" in
    if version < 1 || version > report_schema_version then
      Error (Printf.sprintf "unsupported prax.report version %d" version)
    else
      let* p_analysis = str "analysis" in
      let* p_status = str "status" in
      let* p_table_bytes = int "table_bytes" in
      let* p_clause_count = int "clause_count" in
      let* p_text = str "text" in
      let* ph =
        match Metrics.member "phases" doc with
        | Some (Metrics.Obj _ as ph) ->
            let f k =
              match Metrics.member k ph with Some v -> float_of v | None -> 0.
            in
            Ok
              {
                preproc = f "preprocess";
                analysis = f "evaluate";
                collection = f "collect";
              }
        | _ -> Error "prax.report document lacks phases"
      in
      Ok
        {
          p_analysis;
          p_input =
            (match Metrics.member "input" doc with
            | Some (Metrics.Str s) -> Some s
            | _ -> None);
          p_config =
            (match Metrics.member "config" doc with
            | Some c -> config_of_json c
            | None -> []);
          p_status;
          p_phases = ph;
          p_table_bytes;
          p_clause_count;
          p_source_lines =
            (match Metrics.member "source_lines" doc with
            | Some (Metrics.Int n) -> Some n
            | _ -> None);
          p_engine =
            Option.map engine_counts_of_json (Metrics.member "engine" doc);
          p_text;
          p_result =
            Option.value (Metrics.member "result" doc) ~default:Metrics.Null;
        }

(* --- the registry -------------------------------------------------------- *)

type source_kind = Logic_program | Fp_program | Cfg_program

let kind_to_string = function
  | Logic_program -> "logic-program"
  | Fp_program -> "fp-program"
  | Cfg_program -> "cfg-program"

type cache = {
  cache_load : string -> string option;
  cache_save : string -> string -> unit;
}

type incremental = {
  table_class : config -> string;
  run_incr : config:config -> guard:Guard.t -> cache:cache -> string -> report;
}

type t = {
  name : string;
  doc : string;
  kind : source_kind;
  extensions : string list;
  defaults : config;
  run : config:config -> guard:Guard.t -> string -> report;
  incremental : incremental option;
}

(* registration order is meaningful: [claiming_extension] awards an
   extension to the first registrant, so [.pl] stays groundness-by-default
   even though depth-k and gaia accept it too *)
let registry : t list ref = ref []

let register (a : t) =
  if List.exists (fun b -> String.equal b.name a.name) !registry then
    invalid_arg (Printf.sprintf "Analysis.register: duplicate %s" a.name);
  registry := !registry @ [ a ]

let find name = List.find_opt (fun a -> String.equal a.name name) !registry
let all () = !registry
let names () = List.map (fun a -> a.name) !registry

let claiming_extension ext =
  List.find_opt (fun a -> List.mem ext a.extensions) !registry

let run (a : t) ?(config = []) ?(guard = Guard.unlimited) src =
  match merge_config ~defaults:a.defaults config with
  | Error msg -> raise (Config_error msg)
  | Ok cfg -> a.run ~config:cfg ~guard src

let run_incr (a : t) ?(config = []) ?(guard = Guard.unlimited) ~cache src =
  match merge_config ~defaults:a.defaults config with
  | Error msg -> raise (Config_error msg)
  | Ok cfg -> (
      match a.incremental with
      | Some i -> i.run_incr ~config:cfg ~guard ~cache src
      | None -> a.run ~config:cfg ~guard src)

let table_class (a : t) ?(config = []) () =
  match a.incremental with
  | None -> None
  | Some i -> (
      match merge_config ~defaults:a.defaults config with
      | Error msg -> raise (Config_error msg)
      | Ok cfg -> Some (i.table_class cfg))

let memory_cache () =
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
  {
    cache_load = Hashtbl.find_opt tbl;
    cache_save = (fun k v -> Hashtbl.replace tbl k v);
  }
