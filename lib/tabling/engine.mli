(** The tabled evaluation engine — the XSB substitute.

    A continuation-passing formulation of OLDT/SLG for definite
    programs: variant-based call tables, answer tables with duplicate
    elimination, eager answer propagation to registered consumers.  For
    definite programs it computes the minimal model restricted to the
    call forest and terminates whenever calls and answers range over a
    finite domain — the completeness guarantee the paper's analyses rely
    on.

    The engine is parametric in {!hooks} so the depth-k analysis
    (Section 5) and the widening extension (Section 6.1) are this same
    engine with abstract unification, call/answer abstraction, or answer
    widening plugged in.

    Evaluation can be governed by a {!Prax_guard.Guard.t}: budgets are
    checked on every resolution step, and on exhaustion {!run_status}
    degrades to a sound partial result instead of raising out of a
    half-mutated state — see [docs/ROBUSTNESS.md]. *)

open Prax_logic
module Guard = Prax_guard.Guard

type hooks = {
  unify : Subst.t -> Term.t -> Term.t -> Subst.t option;
  abstract_call : Term.t -> Term.t;
      (** applied to the canonical call before table lookup *)
  abstract_answer : Term.t -> Term.t;
      (** applied to the canonical answer before dedup/recording *)
  widen : (previous:Term.t list -> Term.t -> Term.t) option;
      (** on-the-fly widening: sees the answers already in the entry and
          may extrapolate the incoming one *)
}

val concrete_hooks : hooks
(** Syntactic unification, no abstraction, no widening. *)

(** Per-engine operation counts, reset by {!reset_tables}.

    The engine also feeds the process-wide observability registry
    ({!Prax_metrics.Metrics}) on the same events, under these names
    (catalogued in [docs/METRICS.md]):

    - [engine.call_lookups] — every tabled call occurrence (equals
      {!field-stats.calls} summed over engines);
    - [engine.call_hits] / [engine.call_misses] — lookup resolved by an
      existing variant entry vs. creating one; hits + misses = lookups,
      and misses equals {!field-stats.table_entries} summed over engines;
    - [engine.answers_offered] — candidate answers derived by producers,
      before duplicate suppression;
    - [engine.answers_inserted] / [engine.answers_deduped] — genuinely
      new answers recorded vs. variants suppressed; inserted + deduped =
      offered;
    - [engine.consumer_suspensions] — consumer registrations on a table
      entry (one per tabled call occurrence);
    - [engine.consumer_resumptions] — answer deliveries to consumers,
      replay and eager broadcast alike (equals
      {!field-stats.resumptions} summed over engines);
    - [engine.producer_completions] — producers that exhausted clause
      resolution; with eager answer broadcast there is no separate
      completion phase, so this is the engine's analogue of an SCC
      completion;
    - [engine.widenings] — applications of the {!hooks.widen} hook;
    - [engine.aborts] — governed runs torn down by budget exhaustion or
      an exception unwinding through the engine;
    - [engine.forced_completions] — table entries force-completed
      (widened to their most general answer) after budget exhaustion
      (equals {!field-stats.forced} summed over engines). *)
type stats = {
  mutable calls : int;  (** tabled call occurrences *)
  mutable table_entries : int;  (** distinct call variants *)
  mutable answers : int;  (** distinct answers recorded *)
  mutable duplicates : int;  (** answers filtered by variant check *)
  mutable resumptions : int;  (** consumer deliveries *)
  mutable forced : int;  (** entries force-completed after an abort *)
}

type t

type builtin = t -> Subst.t -> Term.t array -> (Subst.t -> unit) -> unit
(** A builtin receives the engine, the current substitution, the goal's
    arguments, and a success continuation it may invoke any number of
    times. *)

exception Not_definite of Term.t
(** Raised when a goal is not a definite-program construct (e.g. an
    unbound variable under call position). *)

val create :
  ?hooks:hooks ->
  ?tabled:(string * int -> bool) ->
  ?open_calls:bool ->
  ?guard:Guard.t ->
  Database.t ->
  t
(** [create db] makes an engine over the clause store.  [tabled]
    selects which predicates are tabled (default: all).  [open_calls]
    enables the Section 6.2 forward-subsumption strategy: only the most
    general call per predicate is tabled and specific calls filter its
    answers.  [guard] governs resource budgets (default
    {!Guard.unlimited}). *)

val set_guard : t -> Guard.t -> unit
(** Swap the engine's guard — e.g. a fresh deadline per top-level query,
    or {!Guard.unlimited} to lift budgets after a partial run. *)

val guard : t -> Guard.t

val register_builtin : t -> string -> int -> builtin -> unit

val is_builtin : t -> string * int -> bool
(** Is the predicate answered by a registered builtin (and therefore
    never tabled)?  The incremental dependency graph uses this to keep
    builtins out of the clause-level call graph. *)

(** {2 Incremental table splice and extraction (docs/INCREMENTAL.md)}

    Tables need not live and die with one [solve] call: a completed
    run's tables can be {!export_tables}-extracted per entry (with the
    demand edges between call variants), persisted, and spliced back
    into a fresh engine through a {!set_resolver} resolver.  A spliced
    entry is installed through the same dedup trie and space accounting
    as a produced one, so dumps, digests, space estimates, and the
    consistency invariants are byte-identical to a fresh computation —
    the property the incremental-vs-scratch oracle relies on. *)

val set_resolver : t -> (Term.t -> Term.t list option) option -> unit
(** Install (or clear, with [None]) the splice resolver.  It is
    consulted whenever a call-table lookup creates a {e new} entry,
    with the canonical (post-abstraction) call key; returning
    [Some answers] installs the canonical answers as the entry's
    complete answer set and skips its producer.  The caller must
    guarantee the answers are exactly what a fresh producer would
    derive (the closure-digest check of [Prax_incr] does). *)

val spliced_entries : t -> int
(** Table entries installed by the resolver since creation or the last
    {!reset_tables}. *)

(** One exported call-table entry: the canonical call, its answers
    (sorted), and the canonical call keys its producer consumed from —
    the demand edges a splice must replay so a restored call table
    equals a freshly computed one. *)
type exported = {
  ex_call : Term.t;
  ex_answers : Term.t list;
  ex_subcalls : Term.t list;
}

val export_tables : t -> exported list
(** Every call-table entry, sorted by call.  Meaningful on a [Complete]
    run (abort recovery scrubs the demand edges). *)

val solve : t -> Subst.t -> Term.t -> (Subst.t -> unit) -> unit
(** Low-level entry: enumerate solutions of a goal under a
    substitution.  No abort recovery — {!Guard.Exhausted} propagates to
    the caller; prefer {!run_status}. *)

val run : t -> Term.t -> (Subst.t -> unit) -> unit
(** [run e goal k]: solve [goal] from the empty substitution.  Degrades
    gracefully under a guard; the status is dropped (use {!run_status}
    to observe it). *)

val run_status : t -> Term.t -> (Subst.t -> unit) -> Guard.status
(** Like {!run}, but reports the evaluation outcome.  On budget
    exhaustion every table entry that could still have received answers
    is force-completed by widening it to its most general answer (the
    entry's own call pattern) and the result is [Partial]: the tables
    then hold a sound over-approximation and remain consistent and
    reusable.  On any other exception the affected entries are discarded
    (so a reused engine re-derives them), invariants are restored, and
    the exception is re-raised. *)

val demand_status : t -> Term.t -> Guard.status
(** [demand_status e key] forces the call-table entry for the
    already-canonical call [key] into existence — spliced from the
    resolver or produced to completion — without registering a consumer
    or enumerating its answers.  The table state afterwards is
    indistinguishable from a [run_status] of the same call whose
    continuation ignored every answer; the incremental replay
    (docs/INCREMENTAL.md) uses this to reconstruct the demanded variant
    set without paying per-answer instantiation. *)

val query : t -> Term.t -> Term.t list
(** Distinct canonical solutions, in discovery order. *)

val query_status : t -> Term.t -> Term.t list * Guard.status
(** Distinct canonical solutions plus the evaluation status. *)

val calls : t -> Term.t list
(** The call table: every canonical call variant encountered.  Reading
    input modes off this table is the paper's "input groundness for
    free" observation. *)

val calls_for : t -> string * int -> Term.t list
val answers_for : t -> string * int -> Term.t list

val table_space_bytes : t -> int
(** Table-space estimate, the Table 1/3/4 metric: one word per trie
    node the call/answer indexes actually allocated, plus per-entry
    and per-answer overhead.  Prefix sharing across keys means this is
    substantially below one stored term per entry — a key never costs
    more nodes than its term size (docs/PERFORMANCE.md).  Maintained
    incrementally, so O(1). *)

val dump_tables : t -> string
(** Canonical textual dump of the call/answer tables: one
    [call => a1 | a2.] line per call variant ("-" when no answers),
    answers and lines sorted.  Deterministic across runs and engines
    that derived the same tables (canonical variable numbering), so it
    serves as the serialized outcome for the persistent store's
    round-trip verification — parsing a line back re-interns the same
    canonical terms. *)

val table_digest : t -> string
(** MD5 hex of {!dump_tables}: a compact outcome fingerprint for
    stored snapshots and warm-start equality checks. *)

val tables_consistent : ?after_abort:bool -> t -> bool
(** Table invariants, for tests and debugging: every entry's answer
    vector and dedup set agree; with [~after_abort:true] additionally
    every entry is completed with no registered consumers or dependency
    edges left behind. *)

val stats : t -> stats
val reset_tables : t -> unit
