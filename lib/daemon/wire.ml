(** prax.wire v1 — see wire.mli for the grammar. *)

module Metrics = Prax_metrics.Metrics

let schema_name = "prax.wire"
let schema_version = 1

type op =
  | Ping
  | Stats
  | Drain
  | Analyze of {
      analysis : string;
      input : string;
      source : string;
      config : (string * string) list;
    }

type request = { id : Metrics.json; client : string option; op : op }

let header =
  [
    ("wire", Metrics.Str schema_name);
    ("version", Metrics.Int schema_version);
  ]

let check_header (j : Metrics.json) : (unit, string) result =
  match Metrics.member "wire" j with
  | Some (Metrics.Str n) when String.equal n schema_name -> (
      match Metrics.member "version" j with
      | Some (Metrics.Int v) when v = schema_version -> Ok ()
      | Some (Metrics.Int v) ->
          Error (Printf.sprintf "unsupported %s version %d" schema_name v)
      | _ -> Error "missing version")
  | Some _ -> Error "wrong wire schema"
  | None -> Error "not a prax.wire frame"

let str_field name j =
  match Metrics.member name j with
  | Some (Metrics.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %s must be a string" name)
  | None -> Error (Printf.sprintf "missing field %s" name)

let parse_request line : (request, string) result =
  match Metrics.json_of_string line with
  | exception _ -> Error "malformed JSON"
  | j -> (
      match check_header j with
      | Error _ as e -> e
      | Ok () -> (
          let id = Option.value (Metrics.member "id" j) ~default:Metrics.Null in
          let client =
            match Metrics.member "client" j with
            | Some (Metrics.Str s) -> Some s
            | _ -> None
          in
          match str_field "op" j with
          | Error _ as e -> e
          | Ok "ping" -> Ok { id; client; op = Ping }
          | Ok "stats" -> Ok { id; client; op = Stats }
          | Ok "drain" -> Ok { id; client; op = Drain }
          | Ok "analyze" -> (
              match
                ( str_field "analysis" j,
                  str_field "input" j,
                  str_field "source" j )
              with
              | Ok analysis, Ok input, Ok source -> (
                  let config_result =
                    match Metrics.member "config" j with
                    | None | Some Metrics.Null -> Ok []
                    | Some (Metrics.Obj kvs) ->
                        let rec conv acc = function
                          | [] -> Ok (List.rev acc)
                          | (k, Metrics.Str v) :: rest ->
                              conv ((k, v) :: acc) rest
                          | (k, _) :: _ ->
                              Error
                                (Printf.sprintf
                                   "config value for %s must be a string" k)
                        in
                        conv [] kvs
                    | Some _ -> Error "config must be an object"
                  in
                  match config_result with
                  | Ok config ->
                      Ok { id; client; op = Analyze { analysis; input; source; config } }
                  | Error _ as e -> e)
              | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e)
                ->
                  e)
          | Ok other -> Error (Printf.sprintf "unknown op %S" other)))

let request_to_string (r : request) : string =
  let op_fields =
    match r.op with
    | Ping -> [ ("op", Metrics.Str "ping") ]
    | Stats -> [ ("op", Metrics.Str "stats") ]
    | Drain -> [ ("op", Metrics.Str "drain") ]
    | Analyze { analysis; input; source; config } ->
        [
          ("op", Metrics.Str "analyze");
          ("analysis", Metrics.Str analysis);
          ("input", Metrics.Str input);
          ("source", Metrics.Str source);
          ( "config",
            Metrics.Obj (List.map (fun (k, v) -> (k, Metrics.Str v)) config) );
        ]
  in
  let client =
    match r.client with
    | Some c -> [ ("client", Metrics.Str c) ]
    | None -> []
  in
  Metrics.json_to_string
    (Metrics.Obj (header @ [ ("id", r.id) ] @ client @ op_fields))

let response ~id ~status extra : string =
  Metrics.json_to_string
    (Metrics.Obj
       (header @ [ ("id", id); ("status", Metrics.Str status) ] @ extra))

let response_status (j : Metrics.json) : (string, string) result =
  match check_header j with
  | Error _ as e -> e
  | Ok () -> (
      match Metrics.member "status" j with
      | Some (Metrics.Str s) -> Ok s
      | _ -> Error "missing status")

let retry_after_ms (j : Metrics.json) : int option =
  match Metrics.member "retry_after_ms" j with
  | Some (Metrics.Int ms) when ms >= 0 -> Some ms
  | _ -> None
