(** Structured diagnostics for the CLI tools.

    The lexer and parsers signal errors with exceptions carrying a
    message and (for lexers) a byte offset; the tools must render these
    as [file:line:col: message] on stderr and exit non-zero instead of
    dying with an OCaml backtrace.  This module is the shared
    machinery: offset→position mapping and a diagnostic record. *)

type t = {
  file : string;  (** input name, ["<stdin>"] or ["<expr>"] for ad-hoc text *)
  line : int option;  (** 1-based *)
  col : int option;  (** 1-based *)
  msg : string;
}

val make : ?line:int -> ?col:int -> file:string -> string -> t

val line_col : string -> int -> int * int
(** [line_col text offset] maps a byte offset into [text] to a 1-based
    (line, column) pair.  Offsets past the end report the position just
    after the last character. *)

val at_offset : file:string -> text:string -> offset:int -> string -> t
(** Diagnostic at a byte offset, with the position resolved against the
    source [text]. *)

val to_string : t -> string
(** GNU-style rendering: [file:line:col: message], omitting the
    position components that are unknown. *)

val of_exn : file:string -> text:string -> exn -> t option
(** Map the toolchain's input-error exceptions ([Lexer.Lex_error],
    [Parser.Parse_error]) to a diagnostic; [None] for exceptions that
    are not input errors. *)
