lib/gaia/absint.ml: Array Boolfun Hashtbl List Option Parser Prax_logic String Term
