(** Clause-level predicate dependency graph with Tarjan SCC
    condensation and closure digests — see depgraph.mli and
    docs/INCREMENTAL.md. *)

open Prax_logic

type pred = string * int

type t = {
  nodes : pred array;  (** sorted; index = node id *)
  index : (pred, int) Hashtbl.t;
  edges : int list array;  (** node id -> callee node ids, sorted uniq *)
  clauses : (pred, Parser.clause list) Hashtbl.t;  (** source order *)
  node_digest : string array;  (** per-predicate clause digest *)
  scc_id : int array;  (** node id -> SCC id, reverse topological *)
  scc_members : pred list array;
  scc_succs : int list array;
  scc_closure : string array;  (** per-SCC closure digest *)
}

(* --- body call extraction ------------------------------------------------- *)

(* Predicates called from a goal; [,]/[;]/[->]/[\+]/[not] are control
   and are traversed, [=] is unification (its arguments are terms, not
   goals), everything else with a functor is a call. *)
let rec goal_calls acc (g : Term.t) =
  match g with
  | Term.Struct ((";" | "," | "->"), args, _) ->
      Array.fold_left goal_calls acc args
  | Term.Struct (("\\+" | "not"), [| inner |], _) -> goal_calls acc inner
  | Term.Struct ("=", _, _) -> acc
  | Term.Atom ("true" | "fail" | "false" | "!") -> acc
  | Term.Atom name -> (name, 0) :: acc
  | Term.Struct (name, args, _) -> (name, Array.length args) :: acc
  | Term.Var _ | Term.Int _ -> acc

let head_pred (c : Parser.clause) : pred =
  match Term.functor_of c.Parser.head with
  | Some p -> p
  | None -> invalid_arg "Depgraph.build: clause head is not a predicate"

(* --- canonical clause digests --------------------------------------------- *)

(* Render the whole clause as one canonical term so variable numbering
   is shared between head and body: raw fresh-variable ids are not
   stable across parses, canonical first-occurrence numbering is. *)
let clause_digest_input (c : Parser.clause) : string =
  let body =
    match c.Parser.body with
    | [] -> Term.true_
    | g :: rest ->
        List.fold_left (fun acc g' -> Term.mk "," [| acc; g' |]) g rest
  in
  Pretty.term_to_string (Canon.of_term (Term.mk ":-" [| c.Parser.head; body |]))

let digest_strings parts =
  Digest.to_hex (Digest.string (String.concat "\n" parts))

(* --- Tarjan --------------------------------------------------------------- *)

(* Iterative Tarjan (generated programs can nest thousands of calls
   deep through chains of singleton SCCs; no recursion on the OCaml
   stack).  SCCs are emitted callees-first: when a root is popped every
   SCC it reaches has already been assigned, so emission order is a
   reverse topological order of the condensation. *)
let tarjan (n : int) (edges : int list array) : int array * int =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_id = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  (* frame: (node, remaining successors) *)
  let call = Stack.create () in
  for start = 0 to n - 1 do
    if index.(start) < 0 then begin
      Stack.push (start, edges.(start)) call;
      index.(start) <- !next_index;
      lowlink.(start) <- !next_index;
      incr next_index;
      Stack.push start stack;
      on_stack.(start) <- true;
      while not (Stack.is_empty call) do
        let v, rest = Stack.pop call in
        match rest with
        | w :: rest' ->
            Stack.push (v, rest') call;
            if index.(w) < 0 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              Stack.push w stack;
              on_stack.(w) <- true;
              Stack.push (w, edges.(w)) call
            end
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
            if lowlink.(v) = index.(v) then begin
              (* v is a root: pop its SCC *)
              let continue = ref true in
              while !continue do
                let w = Stack.pop stack in
                on_stack.(w) <- false;
                scc_id.(w) <- !next_scc;
                if w = v then continue := false
              done;
              incr next_scc
            end;
            (* propagate lowlink to the parent frame *)
            if not (Stack.is_empty call) then begin
              let u, urest = Stack.pop call in
              lowlink.(u) <- min lowlink.(u) lowlink.(v);
              Stack.push (u, urest) call
            end
      done
    end
  done;
  (scc_id, !next_scc)

(* --- construction ---------------------------------------------------------- *)

let build ?(is_call = fun _ -> true) (clause_list : Parser.clause list) : t =
  (* predicate -> clauses, preserving source order *)
  let clauses : (pred, Parser.clause list) Hashtbl.t = Hashtbl.create 64 in
  let order : pred list ref = ref [] in
  List.iter
    (fun c ->
      let p = head_pred c in
      match Hashtbl.find_opt clauses p with
      | Some cs -> Hashtbl.replace clauses p (c :: cs)
      | None ->
          order := p :: !order;
          Hashtbl.replace clauses p [ c ])
    clause_list;
  Hashtbl.iter (fun p cs -> Hashtbl.replace clauses p (List.rev cs)) clauses;
  (* node set: heads plus called predicates *)
  let node_set : (pred, unit) Hashtbl.t = Hashtbl.create 64 in
  let add p = if not (Hashtbl.mem node_set p) then Hashtbl.add node_set p () in
  List.iter add (List.rev !order);
  let body_calls c =
    List.fold_left goal_calls [] c.Parser.body
    |> List.filter is_call |> List.sort_uniq compare
  in
  List.iter (fun c -> List.iter add (body_calls c)) clause_list;
  let nodes =
    Hashtbl.fold (fun p () acc -> p :: acc) node_set [] |> List.sort compare
    |> Array.of_list
  in
  let n = Array.length nodes in
  let index = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace index p i) nodes;
  let edges = Array.make n [] in
  List.iter
    (fun c ->
      let from = Hashtbl.find index (head_pred c) in
      List.iter
        (fun callee ->
          match Hashtbl.find_opt index callee with
          | Some j -> edges.(from) <- j :: edges.(from)
          | None -> ())
        (body_calls c))
    clause_list;
  Array.iteri (fun i es -> edges.(i) <- List.sort_uniq compare es) edges;
  let node_digest =
    Array.map
      (fun p ->
        let cs = Option.value ~default:[] (Hashtbl.find_opt clauses p) in
        let name, arity = p in
        digest_strings
          (Printf.sprintf "%s/%d" name arity
          :: List.map clause_digest_input cs))
      nodes
  in
  let scc_id, nscc = tarjan n edges in
  let scc_members = Array.make nscc [] in
  Array.iteri
    (fun i p -> scc_members.(scc_id.(i)) <- p :: scc_members.(scc_id.(i)))
    nodes;
  Array.iteri
    (fun s ms -> scc_members.(s) <- List.sort compare ms)
    scc_members;
  let scc_succs = Array.make nscc [] in
  Array.iteri
    (fun i es ->
      let s = scc_id.(i) in
      List.iter
        (fun j -> if scc_id.(j) <> s then scc_succs.(s) <- scc_id.(j) :: scc_succs.(s))
        es)
    edges;
  Array.iteri
    (fun s succ -> scc_succs.(s) <- List.sort_uniq compare succ)
    scc_succs;
  (* closure digests in reverse topological order: every successor has a
     smaller SCC id, so one left-to-right pass suffices *)
  let scc_closure = Array.make nscc "" in
  for s = 0 to nscc - 1 do
    let own =
      List.map
        (fun p ->
          let i = Hashtbl.find index p in
          let name, arity = p in
          Printf.sprintf "%s/%d=%s" name arity node_digest.(i))
        scc_members.(s)
    in
    let below = List.map (fun s' -> scc_closure.(s')) scc_succs.(s) in
    scc_closure.(s) <- digest_strings (own @ below)
  done;
  {
    nodes;
    index;
    edges;
    clauses;
    node_digest;
    scc_id;
    scc_members;
    scc_succs;
    scc_closure;
  }

(* --- accessors ------------------------------------------------------------- *)

let preds g = Array.to_list g.nodes
let scc_count g = Array.length g.scc_members

let scc_of g p =
  Option.map (fun i -> g.scc_id.(i)) (Hashtbl.find_opt g.index p)

let members g s = g.scc_members.(s)
let succs g s = g.scc_succs.(s)

let clauses_of g p =
  Option.value ~default:[] (Hashtbl.find_opt g.clauses p)

let pred_digest g p =
  match Hashtbl.find_opt g.index p with
  | Some i -> g.node_digest.(i)
  | None -> digest_strings []

let closure_digest g s = g.scc_closure.(s)

let dependent_cone g (edited : pred list) : int list =
  let nscc = scc_count g in
  let dirty = Array.make nscc false in
  List.iter
    (fun p -> match scc_of g p with Some s -> dirty.(s) <- true | None -> ())
    edited;
  (* an SCC is dirty when any successor is dirty; successors have
     smaller ids, so ascending order converges in one pass *)
  for s = 0 to nscc - 1 do
    if not dirty.(s) then
      dirty.(s) <- List.exists (fun s' -> dirty.(s')) g.scc_succs.(s)
  done;
  let out = ref [] in
  for s = nscc - 1 downto 0 do
    if dirty.(s) then out := s :: !out
  done;
  !out
