examples/quickstart.ml: Depthk Groundness List Logic Prax Prax_depthk Prax_ground Prax_strict Printf Prop Strictness String
