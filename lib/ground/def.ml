(** Def-domain groundness: the fast path over {e definite Boolean
    functions} (Howe & King).  Where the Prop domain enumerates models
    ([Bf] truth tables filled from the tabled engine's answer tables),
    [Def] represents an abstract value directly as a conjunction of
    definite implications [y <- x1 /\ ... /\ xk] ("y is ground whenever
    the xi are"), stored per head variable as a set of minimal
    antecedent bitmasks.

    The driver is a bottom-up Kleene fixpoint over the same abstract
    program {!Transform.program} emits for the tabled path: each clause
    body is flattened into disjunction-free paths, each path's literals
    ([=]/[iff]/abstract calls) become implications over clause-local
    variables, local variables are eliminated by Davis–Putnam
    resolution, and the projection joins into the predicate's current
    value until nothing changes.  Because implications cannot express
    disjunctive groundness ([x \/ y]), results over-approximate the
    Prop answers — the price for immunity to the worst-case programs
    that make model enumeration explode (examples/stress/, after
    Genaim–Howe–Codish).  Guard budgets are honoured: one event per
    path evaluation, table space from the retained implication store;
    on exhaustion every value degrades to top and the report is
    [Partial].

    Selected via the registry config [mode=def] (docs/ANALYSES.md). *)

open Prax_logic
open Prax_tabling
open Prax_prop
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis

let m_paths =
  Metrics.counter ~units:"paths"
    ~doc:"def mode: clause-body paths evaluated across all iterations"
    "ground.def.paths"

let m_iterations =
  Metrics.counter ~units:"rounds"
    ~doc:"def mode: Kleene iterations over the abstract program"
    "ground.def.iterations"

(* Local variables are bitmask positions, so one clause path is limited
   to an OCaml int's worth of them; paths needing more degrade to top
   (sound, and unheard of outside generated programs). *)
let max_width = Sys.int_size - 2

(* --- implication sets ---------------------------------------------------- *)

(* A definite Boolean function over [n] variables, or bottom.  [impl.(y)]
   holds antecedent bitmasks: mask [m] reads "y is ground whenever every
   variable in [m] is".  Mask [0] means y is definitely ground; an empty
   array row leaves y unconstrained.  Masks never contain their head
   (such implications are tautologies). *)
type value = Bot | F of int list array

(* Keep only minimal masks: drop any mask that is a (non-strict)
   superset of an earlier-kept one. *)
let minimize (ms : int list) : int list =
  let ms = List.sort_uniq compare ms in
  List.fold_left
    (fun kept m ->
      if List.exists (fun k -> k land m = k) kept then kept else m :: kept)
    [] ms
  |> List.rev

let same_masks a b = List.sort compare a = List.sort compare b

(* Forward chaining (unit propagation): the set of variables ground
   under assumptions [mask].  Decides entailment of a definite clause
   by a definite theory. *)
let chain (impl : int list array) (mask : int) : int =
  let s = ref mask in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun y ms ->
        if
          !s land (1 lsl y) = 0
          && List.exists (fun m -> m land !s = m) ms
        then begin
          s := !s lor (1 lsl y);
          changed := true
        end)
      impl
  done;
  !s

let entails impl y m = chain impl m land (1 lsl y) <> 0

(* [leq f1 f2]: f1 at least as strong as f2 (models(f1) subset of
   models(f2)); the domain order with Bot below everything. *)
let leq v1 v2 =
  match (v1, v2) with
  | Bot, _ -> true
  | F _, Bot -> false
  | F a, F b ->
      let ok = ref true in
      Array.iteri
        (fun y ms -> if !ok then ok := List.for_all (entails a y) ms)
        b;
      !ok

(* Resolution closure: saturate so every minimal entailed implication is
   syntactically present — canonical enough for a precise pairwise
   join.  [n] is small here (predicate arity), so the antichain stays
   tiny in practice. *)
let close n (impl : int list array) : int list array =
  let cur = Array.map minimize impl in
  let changed = ref true in
  while !changed do
    changed := false;
    for y = 0 to n - 1 do
      let extra = ref [] in
      List.iter
        (fun m ->
          for z = 0 to n - 1 do
            if m land (1 lsl z) <> 0 then
              List.iter
                (fun mz ->
                  let m' = m land lnot (1 lsl z) lor mz in
                  if m' land (1 lsl y) = 0 then extra := m' :: !extra)
                cur.(z)
          done)
        cur.(y);
      if !extra <> [] then begin
        let merged = minimize (cur.(y) @ !extra) in
        if not (same_masks merged cur.(y)) then begin
          cur.(y) <- merged;
          changed := true
        end
      end
    done
  done;
  cur

(* Join (least upper bound): an implication survives iff both sides
   entail it, i.e. pairwise antecedent unions over closed operands. *)
let join n v1 v2 =
  match (v1, v2) with
  | Bot, v | v, Bot -> v
  | F a, F b ->
      let a = close n a and b = close n b in
      F
        (Array.init n (fun y ->
             minimize
               (List.concat_map
                  (fun m1 -> List.map (fun m2 -> m1 lor m2) b.(y))
                  a.(y))))

(* Davis–Putnam elimination of local variable [z]: all resolvents on z,
   then every clause mentioning z is dropped.  Complete for the
   consequences over the remaining variables (definite clauses). *)
let eliminate (impl : int list array) (z : int) : unit =
  let defs = impl.(z) in
  let zbit = 1 lsl z in
  Array.iteri
    (fun y ms ->
      if y = z then impl.(y) <- []
      else begin
        let keep, with_z = List.partition (fun m -> m land zbit = 0) ms in
        let res =
          List.concat_map
            (fun m ->
              List.filter_map
                (fun mz ->
                  let m' = m land lnot zbit lor mz in
                  if m' land (1 lsl y) <> 0 then None else Some m')
                defs)
            with_z
        in
        impl.(y) <- minimize (keep @ res)
      end)
    impl

(* --- clause paths -------------------------------------------------------- *)

(* Flatten an abstract body into disjunction-free literal paths.  [;]
   multiplies; [,] concatenates (Transform emits nested conjunctions
   only inside disjunction branches). *)
let rec goal_paths (g : Term.t) : Term.t list list =
  match g with
  | Term.Struct (",", [| a; b |], _) ->
      List.concat_map
        (fun p -> List.map (fun q -> p @ q) (goal_paths b))
        (goal_paths a)
  | Term.Struct (";", [| a; b |], _) -> goal_paths a @ goal_paths b
  | Term.Atom "true" -> [ [] ]
  | t -> [ [ t ] ]

let body_paths (body : Term.t list) : Term.t list list =
  List.fold_left
    (fun acc g ->
      List.concat_map (fun p -> List.map (fun q -> p @ q) (goal_paths g)) acc)
    [ [] ] body

type pclause = {
  pc_pred : string * int;  (** abstract head predicate *)
  pc_head : int array;  (** head alpha variable ids *)
  pc_paths : Term.t list list;
}

let prepare (c : Parser.clause) : pclause =
  let name, args =
    match c.Parser.head with
    | Term.Atom a -> (a, [||])
    | Term.Struct (f, args, _) -> (f, args)
    | _ -> invalid_arg "Def.prepare: bad clause head"
  in
  let head =
    Array.map
      (function Term.Var v -> v | _ -> invalid_arg "Def.prepare: head alpha")
      args
  in
  {
    pc_pred = (name, Array.length args);
    pc_head = head;
    pc_paths = body_paths c.Parser.body;
  }

(* --- path evaluation ----------------------------------------------------- *)

exception Path_fails
exception Path_top  (* ran out of mask width: degrade to top, stay sound *)

type penv = {
  mutable nvars : int;
  mutable map : (int * int) list;  (** term var id -> local index *)
  mutable cons : (int * int) list;  (** (head index, antecedent mask) *)
}

let local env v =
  match List.assoc_opt v env.map with
  | Some i -> i
  | None ->
      if env.nvars >= max_width then raise Path_top;
      let i = env.nvars in
      env.nvars <- i + 1;
      env.map <- (v, i) :: env.map;
      i

let fresh_local env =
  if env.nvars >= max_width then raise Path_top;
  let i = env.nvars in
  env.nvars <- i + 1;
  i

let add env y mask = if mask land (1 lsl y) = 0 then env.cons <- (y, mask) :: env.cons

(* A groundness-value term in literal position. *)
type gv = V of int | Ground | Unknown

let gv_of env (t : Term.t) : gv =
  match t with
  | Term.Var v -> V (local env v)
  | Term.Atom "true" -> Ground
  | _ -> Unknown

let eval_literal lookup env (g : Term.t) : unit =
  match g with
  | Term.Atom ("fail" | "false") -> raise Path_fails
  | Term.Struct ("=", [| a; b |], _) -> (
      match (gv_of env a, gv_of env b) with
      | V x, V y ->
          add env x (1 lsl y);
          add env y (1 lsl x)
      | V x, Ground | Ground, V x -> add env x 0
      | _ -> ())
  | Term.Struct ("iff", args, _) when Array.length args >= 1 -> (
      match gv_of env args.(0) with
      | V alpha ->
          let mask = ref 0 in
          let precise = ref true in
          for i = 1 to Array.length args - 1 do
            match gv_of env args.(i) with
            | V x ->
                mask := !mask lor (1 lsl x);
                add env x (1 lsl alpha)
            | Ground -> ()
            | Unknown -> precise := false
          done;
          if !precise then add env alpha !mask
      | _ -> ())
  | Term.Atom name -> (
      (* nullary abstract call: Bot fails the path, anything else binds
         nothing *)
      match lookup (name, 0) with Some Bot -> raise Path_fails | _ -> ())
  | Term.Struct (name, args, _) -> (
      match lookup (name, Array.length args) with
      | None -> ()  (* not an abstract predicate: claim nothing *)
      | Some Bot -> raise Path_fails
      | Some (F impl) ->
          let locs =
            Array.map
              (fun a ->
                match gv_of env a with
                | V x -> x
                | Ground ->
                    let w = fresh_local env in
                    add env w 0;
                    w
                | Unknown -> fresh_local env)
              args
          in
          Array.iteri
            (fun j ms ->
              List.iter
                (fun m ->
                  let mask = ref 0 in
                  for i = 0 to Array.length locs - 1 do
                    if m land (1 lsl i) <> 0 then
                      mask := !mask lor (1 lsl locs.(i))
                  done;
                  add env locs.(j) !mask)
                ms)
            impl)
  | _ -> ()

(* Evaluate one path to its head projection: collect implications over
   clause-local variables, then eliminate everything but the head
   alphas. *)
let eval_path lookup (pc : pclause) (path : Term.t list) : value =
  let arity = snd pc.pc_pred in
  let env = { nvars = 0; map = []; cons = [] } in
  Array.iter (fun v -> ignore (local env v)) pc.pc_head;
  try
    List.iter (eval_literal lookup env) path;
    let impl = Array.make env.nvars [] in
    List.iter (fun (y, m) -> impl.(y) <- m :: impl.(y)) env.cons;
    Array.iteri (fun y ms -> impl.(y) <- minimize ms) impl;
    for z = arity to env.nvars - 1 do
      eliminate impl z
    done;
    F (Array.sub impl 0 arity)
  with
  | Path_fails -> Bot
  | Path_top -> F (Array.make arity [])

(* --- fixpoint ------------------------------------------------------------ *)

type store = (string * int, value) Hashtbl.t

(* Words retained by the implication store, the def-mode analogue of the
   engine's table-space estimate: one word per predicate entry plus one
   per mask (docs/METRICS.md "table_bytes"). *)
let store_words (store : store) : int =
  Hashtbl.fold
    (fun _ v acc ->
      acc + 1
      + match v with Bot -> 0 | F impl -> Array.fold_left (fun a ms -> a + List.length ms) 0 impl)
    store 0

type run_stats = { iterations : int; paths : int }

let fixpoint ~guard (pcs : pclause list) (preds : (string * int) list) :
    store * Guard.status * run_stats =
  let store : store = Hashtbl.create 64 in
  List.iter
    (fun (name, arity) ->
      Hashtbl.replace store (Transform.prefix ^ name, arity) Bot)
    preds;
  let lookup p = Hashtbl.find_opt store p in
  let iterations = ref 0 in
  let paths = ref 0 in
  let status =
    try
      let changed = ref true in
      while !changed do
        changed := false;
        incr iterations;
        Metrics.incr m_iterations;
        List.iter
          (fun pc ->
            let arity = snd pc.pc_pred in
            List.iter
              (fun path ->
                Guard.check guard;
                Metrics.incr m_paths;
                incr paths;
                match eval_path lookup pc path with
                | Bot -> ()
                | contrib ->
                    let old = Hashtbl.find store pc.pc_pred in
                    let next = join arity old contrib in
                    if not (leq next old) then begin
                      Hashtbl.replace store pc.pc_pred next;
                      Guard.note_space guard (8 * store_words store);
                      changed := true
                    end)
              pc.pc_paths)
          pcs
      done;
      Guard.Complete
    with Guard.Exhausted reason ->
      (* mid-iteration values under-approximate the fixpoint; widen
         everything to top so the partial report stays sound *)
      let n = Hashtbl.length store in
      Hashtbl.iter
        (fun p v ->
          match v with
          | Bot | F _ ->
              let arity = snd p in
              Hashtbl.replace store p (F (Array.make arity [])))
        (Hashtbl.copy store);
      Guard.Partial { reason; exhausted_entries = n }
  in
  (store, status, { iterations = !iterations; paths = !paths })

(* --- collection ---------------------------------------------------------- *)

(* gamma: a def value as a Bf truth table (rows closed under the
   implications), so reports read identically across modes. *)
let bf_of_value arity (v : value) : Bf.t =
  match v with
  | Bot -> Bf.bottom arity
  | F impl ->
      let f = Bf.bottom arity in
      for row = 0 to (1 lsl arity) - 1 do
        let ok = ref true in
        Array.iteri
          (fun y ms ->
            if !ok then
              ok :=
                List.for_all
                  (fun m -> m land row <> m || row land (1 lsl y) <> 0)
                  ms)
          impl;
        if !ok then Bf.add f row
      done;
      f

(* --- incremental (per-SCC) evaluation ------------------------------------- *)

module Depgraph = Prax_incr.Depgraph
module Incr = Prax_incr.Incr

(* Value (de)serialization for the fragment cache: one predicate per
   line, [p <name> <arity> <desc>] where [desc] is [bot] or [f] followed
   by one [;]-prefixed segment per argument (comma-separated antecedent
   masks).  Anything that fails the strict parse degrades the whole
   fragment to a cache miss — never to a wrong value. *)
let def_fragment_magic = "prax.incr.def 1"

let value_desc (v : value) : string =
  match v with
  | Bot -> "bot"
  | F impl ->
      "f"
      ^ String.concat ""
          (Array.to_list
             (Array.map
                (fun ms ->
                  ";" ^ String.concat "," (List.map string_of_int ms))
                impl))

let value_of_desc arity (desc : string) : value option =
  if desc = "bot" then Some Bot
  else if String.length desc >= 1 && desc.[0] = 'f' then
    let rest = String.sub desc 1 (String.length desc - 1) in
    match (arity, rest) with
    | 0, "" -> Some (F [||])
    | _ -> (
        match String.split_on_char ';' rest with
        | "" :: segs when List.length segs = arity -> (
            try
              Some
                (F
                   (Array.of_list
                      (List.map
                         (fun seg ->
                           if seg = "" then []
                           else
                             List.map int_of_string
                               (String.split_on_char ',' seg))
                         segs)))
            with _ -> None)
        | _ -> None)
  else None

let values_to_string (vs : ((string * int) * value) list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b def_fragment_magic;
  Buffer.add_char b '\n';
  List.iter
    (fun (((name, arity), v) : (string * int) * value) ->
      Buffer.add_string b
        (Printf.sprintf "p %s %d %s\n" name arity (value_desc v)))
    vs;
  Buffer.contents b

let values_of_string (s : string) : ((string * int) * value) list option =
  match String.split_on_char '\n' s with
  | magic :: lines when String.equal magic def_fragment_magic -> (
      try
        Some
          (List.filter_map
             (fun line ->
               if line = "" then None
               else
                 match String.split_on_char ' ' line with
                 | [ "p"; name; arity_s; desc ] -> (
                     let arity = int_of_string arity_s in
                     match value_of_desc arity desc with
                     | Some v -> Some ((name, arity), v)
                     | None -> raise Exit)
                 | _ -> raise Exit)
             lines)
      with _ -> None)
  | _ -> None

(* Per-SCC bottom-up evaluation in reverse topological order (callees
   first, so their values are final when a caller's paths read them) —
   the same least fixpoint as the global chaotic iteration of
   {!fixpoint}, which is what makes the incremental report byte-equal
   to the scratch one.  SCCs whose closure digest hits the cache splice
   their serialized values instead of iterating. *)
let fixpoint_incr ~(cache : Analysis.cache) ~guard
    (abstract : Parser.clause list) (pcs : pclause list)
    (preds : (string * int) list) :
    store * Guard.status * run_stats * Incr.outcome =
  let g =
    Depgraph.build ~is_call:(fun (name, _) -> name <> "iff") abstract
  in
  let n = Depgraph.scc_count g in
  let predset : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (name, arity) ->
      Hashtbl.replace predset (Transform.prefix ^ name, arity) ())
    preds;
  let store : store = Hashtbl.create 64 in
  let lookup p = Hashtbl.find_opt store p in
  let iterations = ref 0 in
  let paths = ref 0 in
  let spliced = ref 0 in
  let invalidated = ref 0 in
  let status =
    try
      for s = 0 to n - 1 do
        let members =
          List.filter (Hashtbl.mem predset) (Depgraph.members g s)
        in
        let key =
          Incr.fragment_key ~table_class:"def" (Depgraph.closure_digest g s)
        in
        let splice =
          if members = [] then None
          else
            match Option.map values_of_string (cache.Analysis.cache_load key) with
            | Some (Some vs)
              when List.sort compare (List.map fst vs)
                   = List.sort compare members ->
                Some vs
            | _ -> None
        in
        match splice with
        | Some vs ->
            incr spliced;
            List.iter (fun (p, v) -> Hashtbl.replace store p v) vs
        | None ->
            if members = [] then incr spliced  (* nothing to compute *)
            else begin
              incr invalidated;
              List.iter (fun p -> Hashtbl.replace store p Bot) members;
              let scc_pcs =
                List.filter (fun pc -> List.mem pc.pc_pred members) pcs
              in
              let changed = ref true in
              while !changed do
                changed := false;
                incr iterations;
                Metrics.incr m_iterations;
                List.iter
                  (fun pc ->
                    let arity = snd pc.pc_pred in
                    List.iter
                      (fun path ->
                        Guard.check guard;
                        Metrics.incr m_paths;
                        incr paths;
                        match eval_path lookup pc path with
                        | Bot -> ()
                        | contrib ->
                            let old = Hashtbl.find store pc.pc_pred in
                            let next = join arity old contrib in
                            if not (leq next old) then begin
                              Hashtbl.replace store pc.pc_pred next;
                              Guard.note_space guard (8 * store_words store);
                              changed := true
                            end)
                      pc.pc_paths)
                  scc_pcs
              done;
              cache.Analysis.cache_save key
                (values_to_string
                   (List.map (fun p -> (p, Hashtbl.find store p)) members))
            end
      done;
      Guard.Complete
    with Guard.Exhausted reason ->
      (* widen the whole domain to top, exactly like the scratch path:
         the partial report must stay sound and byte-comparable *)
      Hashtbl.iter
        (fun p () ->
          Hashtbl.replace store p (F (Array.make (snd p) [])))
        predset;
      Guard.Partial { reason; exhausted_entries = Hashtbl.length store }
  in
  let o =
    {
      Incr.sccs = n;
      invalidated = !invalidated;
      spliced = !spliced;
      spliced_entries = 0;
    }
  in
  Incr.record o;
  (store, status, { iterations = !iterations; paths = !paths }, o)

(* --- report assembly -------------------------------------------------------- *)

let timers = (Analyze.t_preprocess, Analyze.t_evaluate, Analyze.t_collect)

let collect_results store preds =
  List.map
    (fun (name, arity) ->
      let v =
        Option.value ~default:Bot
          (Hashtbl.find_opt store (Transform.prefix ^ name, arity))
      in
      let success = bf_of_value arity v in
      {
        Analyze.pred = (name, arity);
        success;
        definite = Bf.definite success;
        never_succeeds = Bf.is_empty success;
        call_patterns = [];  (* bottom-up: goal-independent *)
      })
    preds

let make_report abstract store status (rs : run_stats) phases results :
    Analyze.report =
  let answers =
    Hashtbl.fold
      (fun _ v acc ->
        acc
        + match v with Bot -> 0 | F impl -> Array.fold_left (fun a ms -> a + List.length ms) 0 impl)
      store 0
  in
  {
    Analyze.results;
    phases;
    table_bytes = 8 * store_words store;
    engine_stats =
      {
        Engine.calls = rs.paths;
        table_entries = Hashtbl.length store;
        answers;
        duplicates = 0;
        resumptions = rs.iterations;
        forced = 0;
      };
    clause_count = List.length abstract;
    status;
  }

let analyze_clauses ?(guard = Guard.unlimited) (clauses : Parser.clause list) :
    Analyze.report =
  let phases, (abstract, _, _), (store, status, rs), results =
    Analysis.phased ~timers
      ~pre:(fun () ->
        let abstract, preds, _max_iff = Transform.program clauses in
        (abstract, preds, List.map prepare abstract))
      ~eval:(fun (_, preds, pcs) -> fixpoint ~guard pcs preds)
      ~collect:(fun (_, preds, _) (store, _, _) -> collect_results store preds)
      ()
  in
  make_report abstract store status rs phases results

(** Edit-aware variant: per-SCC evaluation against a fragment cache;
    byte-identical report to {!analyze_clauses} (docs/INCREMENTAL.md). *)
let analyze_clauses_incr ~cache ?(guard = Guard.unlimited)
    (clauses : Parser.clause list) : Analyze.report =
  let phases, (abstract, _, _), (store, status, rs, _), results =
    Analysis.phased ~timers
      ~pre:(fun () ->
        let abstract, preds, _max_iff = Transform.program clauses in
        (abstract, preds, List.map prepare abstract))
      ~eval:(fun (abstract, preds, pcs) ->
        fixpoint_incr ~cache ~guard abstract pcs preds)
      ~collect:(fun (_, preds, _) (store, _, _, _) ->
        collect_results store preds)
      ()
  in
  make_report abstract store status rs phases results

let analyze ?guard (src : string) : Analyze.report =
  let t0 = Analysis.now () in
  let clauses =
    Metrics.time Analyze.t_preprocess (fun () -> Parser.parse_clauses src)
  in
  let t_parse = Analysis.now () -. t0 in
  let r = analyze_clauses ?guard clauses in
  { r with Analyze.phases = Analysis.add_preproc r.Analyze.phases t_parse }

(** Edit-aware full pipeline; see {!analyze_clauses_incr}. *)
let analyze_incr ~cache ?guard (src : string) : Analyze.report =
  let t0 = Analysis.now () in
  let clauses =
    Metrics.time Analyze.t_preprocess (fun () -> Parser.parse_clauses src)
  in
  let t_parse = Analysis.now () -. t0 in
  let r = analyze_clauses_incr ~cache ?guard clauses in
  { r with Analyze.phases = Analysis.add_preproc r.Analyze.phases t_parse }
