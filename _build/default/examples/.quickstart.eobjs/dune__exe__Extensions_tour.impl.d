examples/extensions_tour.ml: Dataflow Hm Infinite List Logic Prax Prax_infinite Prax_tabling Printf
