(** Bounded LRU cache for the daemon's resident results.

    The daemon used to keep every complete result in an unbounded
    [Hashtbl] — fine for a test run, unbounded growth for a resident
    process serving distinct sources forever.  This replaces it with a
    doubly-linked LRU bounded both by entry count and by total payload
    bytes: inserting past either cap evicts least-recently-used entries
    until both hold (the caller counts evictions via [on_evict] —
    [daemon.cache_evictions]).

    A single value larger than [max_bytes] is never admitted (it would
    evict the whole cache to hold one entry that could not even stay).

    String keys and values; byte accounting is [String.length key +
    String.length value] per entry. *)

type t

val create : ?on_evict:(key:string -> unit) -> max_entries:int -> max_bytes:int -> unit -> t
(** Caps are clamped to at least 1 entry / 1 byte. *)

val find : t -> string -> string option
(** Lookup; a hit becomes most-recently-used. *)

val put : t -> string -> string -> unit
(** Insert or replace (a replace refreshes recency), then evict LRU
    entries until both caps hold.  Oversized values (entry bytes >
    [max_bytes]) are dropped without evicting anything. *)

val remove : t -> string -> unit

val length : t -> int
val bytes : t -> int
(** Live entries and their byte total — observability and tests. *)
