examples/compiler_modes.ml: Array Groundness List Logic Option Prax Prax_ground Printf String
