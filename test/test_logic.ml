(* Unit and property tests for the logic substrate: terms, substitutions,
   unification, canonicalization, the reader, and the SLD engine. *)

open Prax_logic

let parse = Parser.parse_term
let show t = Pretty.term_to_string t

let check_term msg expected actual =
  Alcotest.(check string) msg expected (show actual)

(* --- terms ------------------------------------------------------------- *)

let test_term_basics () =
  let t = parse "f(a, g(X, Y), X)" in
  Alcotest.(check int) "size" 6 (Term.size t);
  Alcotest.(check int) "depth" 3 (Term.depth t);
  Alcotest.(check int) "distinct vars" 2 (List.length (Term.vars t));
  Alcotest.(check bool) "not ground" false (Term.is_ground t);
  Alcotest.(check bool) "ground" true (Term.is_ground (parse "f(a,b,1)"))

let test_term_equal () =
  Alcotest.(check bool) "equal" true
    (Term.equal (parse "f(a,1)") (parse "f(a,1)"));
  Alcotest.(check bool) "different functor" false
    (Term.equal (parse "f(a)") (parse "g(a)"));
  Alcotest.(check bool) "different arity" false
    (Term.equal (parse "f(a)") (parse "f(a,b)"))

let test_conjuncts () =
  let t = parse "(a, b, c)" in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Term.conjuncts t));
  let back = Term.conj (Term.conjuncts t) in
  check_term "roundtrip" "a, b, c" back

let test_list_elements () =
  (match Term.list_elements (parse "[1,2,3]") with
  | Some es -> Alcotest.(check int) "3 elements" 3 (List.length es)
  | None -> Alcotest.fail "proper list not recognized");
  (match Term.list_elements (parse "[1|X]") with
  | Some _ -> Alcotest.fail "partial list must not be proper"
  | None -> ())

(* --- parser ------------------------------------------------------------ *)

let test_parse_operators () =
  check_term "precedence" "a + b * c" (parse "a+b*c");
  check_term "left assoc" "a - b - c" (parse "a-b-c");
  Alcotest.(check bool) "yfx shape" true
    (Term.equal (parse "a-b-c") (parse "(a-b)-c"));
  Alcotest.(check bool) "xfy comma" true
    (Term.equal (parse "(a,b,c)") (parse "(a,(b,c))"));
  check_term "unary minus" "- a" (parse "-a");
  (match parse "-3" with
  | Term.Int -3 -> ()
  | t -> Alcotest.failf "negative literal, got %s" (show t))

let test_parse_clause_shapes () =
  match Parser.parse_program "p(X) :- q(X), r(X). p(a). :- entry(p)." with
  | [ Parser.Clause c1; Parser.Clause c2; Parser.Directive d ] ->
      Alcotest.(check int) "rule body" 2 (List.length c1.Parser.body);
      Alcotest.(check int) "fact body" 0 (List.length c2.Parser.body);
      check_term "directive" "entry(p)" d
  | items -> Alcotest.failf "expected 3 items, got %d" (List.length items)

let test_parse_lists () =
  check_term "proper list" "[1,2,3]" (parse "[1, 2, 3]");
  check_term "tail" "[1|A]" (Canon.of_term (parse "[1|Xs]"));
  check_term "nested" "[[a],[b,c]]" (parse "[[a],[b,c]]");
  check_term "empty" "[]" (parse "[]")

let test_parse_quoted_and_codes () =
  check_term "quoted atom" "'Hello world'" (parse "'Hello world'");
  (match parse "0'a" with
  | Term.Int 97 -> ()
  | t -> Alcotest.failf "char code, got %s" (show t));
  (match Term.list_elements (parse "\"ab\"") with
  | Some [ Term.Int 97; Term.Int 98 ] -> ()
  | _ -> Alcotest.fail "string as code list")

let test_parse_var_scoping () =
  match Parser.parse_clauses "p(X,X,Y). q(X)." with
  | [ c1; c2 ] -> (
      match (Term.args_of c1.Parser.head, Term.args_of c2.Parser.head) with
      | [| Term.Var a; Term.Var b; Term.Var c |], [| Term.Var d |] ->
          Alcotest.(check bool) "same var shared" true (a = b);
          Alcotest.(check bool) "distinct vars differ" true (a <> c);
          Alcotest.(check bool) "clause scopes separate" true (a <> d)
      | _ -> Alcotest.fail "unexpected head shapes")
  | _ -> Alcotest.fail "expected two clauses"

let test_parse_underscore () =
  match Parser.parse_clauses "p(_, _)." with
  | [ c ] -> (
      match Term.args_of c.Parser.head with
      | [| Term.Var a; Term.Var b |] ->
          Alcotest.(check bool) "underscores distinct" true (a <> b)
      | _ -> Alcotest.fail "unexpected head")
  | _ -> Alcotest.fail "expected one clause"

let test_parse_if_then_else () =
  let t = parse "(a -> b ; c)" in
  match t with
  | Term.Struct (";", [| Term.Struct ("->", _, _); Term.Atom "c" |], _) -> ()
  | _ -> Alcotest.failf "if-then-else shape, got %s" (show t)

let test_parse_op_directive () =
  let items = Parser.parse_program ":- op(700, xfx, ===). a === b." in
  match items with
  | [ Parser.Directive _; Parser.Clause c ] -> (
      match c.Parser.head with
      | Term.Struct ("===", [| _; _ |], _) -> ()
      | t -> Alcotest.failf "custom op, got %s" (show t))
  | _ -> Alcotest.fail "expected directive + clause"

let test_pretty_roundtrip_examples () =
  List.iter
    (fun src ->
      let t1 = parse src in
      let t2 = parse (show t1) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" src)
        true
        (Term.equal (Canon.of_term t1) (Canon.of_term t2)))
    [
      "f(X, g(Y), [1,2|T])";
      "a :- b, c ; d";
      "X is Y + Z * 2 - 1";
      "\\+ p(X)";
      "[a-1, b-2]";
      "p('hello world', -42)";
    ]

(* --- unification ------------------------------------------------------- *)

let test_unify_basic () =
  let t1 = parse "f(X, b)" and t2 = parse "f(a, Y)" in
  match Unify.unify Subst.empty t1 t2 with
  | Some s ->
      check_term "t1 instance" "f(a,b)" (Subst.resolve s t1);
      check_term "t2 instance" "f(a,b)" (Subst.resolve s t2)
  | None -> Alcotest.fail "should unify"

let test_unify_failure () =
  Alcotest.(check bool) "clash" false (Unify.unifiable (parse "f(a)") (parse "f(b)"));
  Alcotest.(check bool) "arity" false (Unify.unifiable (parse "f(a)") (parse "f(a,b)"))

let test_unify_occur_check () =
  let x = Term.var 1 in
  let fx = Term.mk "f" [| x |] in
  Alcotest.(check bool) "no occur-check binds" true
    (Option.is_some (Unify.unify Subst.empty x fx));
  Alcotest.(check bool) "occur-check rejects" false
    (Option.is_some (Unify.unify_oc Subst.empty x fx))

let test_unify_chains () =
  (* X=Y, Y=Z, Z=a must make all three a *)
  let x = Term.var 101 and y = Term.var 102 and z = Term.var 103 in
  let s = Subst.empty in
  let s = Option.get (Unify.unify s x y) in
  let s = Option.get (Unify.unify s y z) in
  let s = Option.get (Unify.unify s z (Term.atom "a")) in
  check_term "x" "a" (Subst.resolve s x);
  check_term "y" "a" (Subst.resolve s y)

(* --- canonicalization / variants --------------------------------------- *)

let test_variants () =
  let t1 = parse "f(X, Y, X)" and t2 = parse "f(A, B, A)" in
  let t3 = parse "f(A, B, B)" in
  Alcotest.(check bool) "variant" true (Canon.variant t1 t2);
  Alcotest.(check bool) "not variant" false (Canon.variant t1 t3)

let test_canonical_idempotent () =
  let t = parse "g(X, f(Y, X), Z)" in
  let c = Canon.of_term t in
  Alcotest.(check bool) "idempotent" true (Term.equal c (Canon.of_term c))

(* --- properties -------------------------------------------------------- *)

let gen_term =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun i -> Term.var (i mod 4)) small_nat;
            map (fun i -> Term.int i) small_int;
            oneofl [ Term.atom "a"; Term.atom "b"; Term.atom "c" ];
          ]
      else
        frequency
          [
            (2, map (fun i -> Term.var (i mod 4)) small_nat);
            (1, oneofl [ Term.atom "a"; Term.atom "b" ]);
            ( 3,
              map2
                (fun f args -> Term.mkl f args)
                (oneofl [ "f"; "g"; "h" ])
                (list_size (int_range 1 3) (self (n / 2))) );
          ])

let prop_unify_reflexive =
  QCheck2.Test.make ~name:"unify t t succeeds" ~count:200 gen_term (fun t ->
      Unify.unifiable t t)

(* rename the right-hand term apart: without occur-check, terms sharing
   variables can create cyclic bindings that diverge on [resolve] — the
   same behaviour as standard Prolog unification *)
let prop_unify_symmetric =
  QCheck2.Test.make ~name:"unifiability is symmetric" ~count:200
    (QCheck2.Gen.pair gen_term gen_term) (fun (t1, t2) ->
      let t2 = Term.rename t2 in
      Unify.unifiable t1 t2 = Unify.unifiable t2 t1)

let prop_mgu_is_unifier =
  QCheck2.Test.make ~name:"mgu equalizes both sides" ~count:200
    (QCheck2.Gen.pair gen_term gen_term) (fun (t1, t2) ->
      let t2 = Term.rename t2 in
      match Unify.unify Subst.empty t1 t2 with
      | None -> true
      | Some s -> Term.equal (Subst.resolve s t1) (Subst.resolve s t2))

let prop_rename_variant =
  QCheck2.Test.make ~name:"rename produces a variant" ~count:200 gen_term
    (fun t -> Canon.variant t (Term.rename t))

let prop_canonical_stable =
  QCheck2.Test.make ~name:"canonicalization stable under renaming" ~count:200
    gen_term (fun t ->
      Term.equal (Canon.of_term t) (Canon.of_term (Term.rename t)))

let prop_pretty_parse_roundtrip =
  QCheck2.Test.make ~name:"pretty/parse roundtrip (ground)" ~count:200
    gen_term (fun t ->
      let t = Subst.resolve Subst.empty t in
      let printed = Pretty.term_to_string t in
      match Parser.parse_term printed with
      | t' -> Term.equal (Canon.of_term t) (Canon.of_term t')
      | exception _ -> false)

(* --- SLD engine --------------------------------------------------------- *)

let db_of src =
  let db = Database.create () in
  ignore (Database.load_string db src);
  db

(* parse goal and answer template together so they share variable scope *)
let answers db q tmpl =
  match parse (Printf.sprintf "(%s) - (%s)" q tmpl) with
  | Term.Struct ("-", [| g; t |], _) ->
      Sld.all_answers db g t |> List.map (fun a -> show (Canon.of_term a))
  | _ -> assert false

let test_sld_facts () =
  let db = db_of "p(a). p(b). p(c)." in
  Alcotest.(check (list string)) "facts" [ "a"; "b"; "c" ]
    (answers db "p(X)" "X")

let test_sld_append () =
  let db = db_of "app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z)." in
  Alcotest.(check (list string)) "append" [ "[1,2,3,4]" ]
    (answers db "app([1,2],[3,4],R)" "R");
  Alcotest.(check int) "split enumeration" 4
    (List.length (answers db "app(X,Y,[1,2,3])" "X-Y"))

let test_sld_cut () =
  let db = db_of "max(X,Y,X) :- X >= Y, !. max(_,Y,Y). first(X, [X|_]) :- !." in
  Alcotest.(check (list string)) "cut commits" [ "3" ] (answers db "max(3,2,M)" "M");
  Alcotest.(check (list string)) "cut fallthrough" [ "5" ]
    (answers db "max(2,5,M)" "M")

let test_sld_negation () =
  let db = db_of "p(a). q(X) :- \\+ p(X)." in
  Alcotest.(check bool) "naf fails" false (Sld.has_solution db (parse "q(a)"));
  Alcotest.(check bool) "naf succeeds" true (Sld.has_solution db (parse "q(b)"))

let test_sld_arith () =
  let db = db_of "fact(0, 1). fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G." in
  Alcotest.(check (list string)) "6!" [ "720" ] (answers db "fact(6,F)" "F")

let test_sld_if_then_else () =
  let db = db_of "sign(X, pos) :- (X > 0 -> true ; fail). classify(X, R) :- (X > 0 -> R = pos ; R = nonpos)." in
  Alcotest.(check (list string)) "then" [ "pos" ] (answers db "classify(3,R)" "R");
  Alcotest.(check (list string)) "else" [ "nonpos" ] (answers db "classify(-1,R)" "R")

let test_sld_findall () =
  let db = db_of "p(1). p(2). p(3)." in
  Alcotest.(check (list string)) "findall" [ "[1,2,3]" ]
    (answers db "findall(X, p(X), L)" "L")

let test_sld_univ_functor () =
  let db = db_of "dummy." in
  Alcotest.(check (list string)) "univ" [ "[f,a,b]" ]
    (answers db "f(a,b) =.. L" "L");
  Alcotest.(check (list string)) "functor" [ "f / 2" ]
    (answers db "functor(f(a,b), F, A)" "F/A");
  Alcotest.(check (list string)) "arg" [ "b" ] (answers db "arg(2, f(a,b), X)" "X")

let test_sld_existence_error () =
  let db = db_of "p(a)." in
  Alcotest.check_raises "unknown predicate"
    (Sld.Existence_error ("q", 1))
    (fun () -> ignore (Sld.has_solution db (parse "q(a)")))

let test_sld_compiled_mode_agrees () =
  let src =
    "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n\
     app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z)."
  in
  let db1 = Database.create ~mode:Database.Dynamic () in
  ignore (Database.load_string db1 src);
  let db2 = Database.create ~mode:Database.Compiled () in
  ignore (Database.load_string db2 src);
  let q = "nrev([1,2,3,4,5], R)" in
  Alcotest.(check (list string))
    "same answers"
    (answers db1 q "R") (answers db2 q "R")

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_unify_reflexive;
      prop_unify_symmetric;
      prop_mgu_is_unifier;
      prop_rename_variant;
      prop_canonical_stable;
      prop_pretty_parse_roundtrip;
    ]

let () =
  Alcotest.run "prax_logic"
    [
      ( "term",
        [
          Alcotest.test_case "basics" `Quick test_term_basics;
          Alcotest.test_case "equality" `Quick test_term_equal;
          Alcotest.test_case "conjuncts" `Quick test_conjuncts;
          Alcotest.test_case "list elements" `Quick test_list_elements;
        ] );
      ( "parser",
        [
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "clause shapes" `Quick test_parse_clause_shapes;
          Alcotest.test_case "lists" `Quick test_parse_lists;
          Alcotest.test_case "quoted atoms & codes" `Quick test_parse_quoted_and_codes;
          Alcotest.test_case "variable scoping" `Quick test_parse_var_scoping;
          Alcotest.test_case "underscore" `Quick test_parse_underscore;
          Alcotest.test_case "if-then-else" `Quick test_parse_if_then_else;
          Alcotest.test_case "op directive" `Quick test_parse_op_directive;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip_examples;
        ] );
      ( "unify",
        [
          Alcotest.test_case "basic" `Quick test_unify_basic;
          Alcotest.test_case "failure" `Quick test_unify_failure;
          Alcotest.test_case "occur-check" `Quick test_unify_occur_check;
          Alcotest.test_case "chains" `Quick test_unify_chains;
        ] );
      ( "canon",
        [
          Alcotest.test_case "variants" `Quick test_variants;
          Alcotest.test_case "idempotent" `Quick test_canonical_idempotent;
        ] );
      ( "sld",
        [
          Alcotest.test_case "facts" `Quick test_sld_facts;
          Alcotest.test_case "append" `Quick test_sld_append;
          Alcotest.test_case "cut" `Quick test_sld_cut;
          Alcotest.test_case "negation" `Quick test_sld_negation;
          Alcotest.test_case "arithmetic" `Quick test_sld_arith;
          Alcotest.test_case "if-then-else" `Quick test_sld_if_then_else;
          Alcotest.test_case "findall" `Quick test_sld_findall;
          Alcotest.test_case "univ/functor/arg" `Quick test_sld_univ_functor;
          Alcotest.test_case "existence error" `Quick test_sld_existence_error;
          Alcotest.test_case "compiled mode agrees" `Quick test_sld_compiled_mode_agrees;
        ] );
      ("properties", qsuite);
    ]
