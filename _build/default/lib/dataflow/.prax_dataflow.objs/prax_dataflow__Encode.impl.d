lib/dataflow/encode.ml: Cfg List Parser Prax_logic Term
