(** Abstract syntax of the lazy, first-order equational language analyzed
    by the strictness analyser — a stand-in for the paper's EQUALS source
    language.

    Programs are sequences of equations; a function is defined by one or
    more equations with patterns on the left, tried top to bottom.  All
    data is built from integers and constructors; booleans are the
    constructors [True]/[False]; lists use [:] and [[]] (stored as ":"
    and "[]"); tuples are the constructors ["tup2"], ["tup3"], …  The
    language is lazy: arguments and constructor fields are evaluated only
    when demanded. *)

type expr =
  | Var of string
  | Int of int
  | Con of string * expr list  (** constructor application, saturated *)
  | App of string * expr list  (** function application, saturated *)
  | Prim of string * expr list
      (** strict primitive: "+", "-", "*", "div", "mod", "neg",
          "==", "/=", "<", "<=", ">", ">=" *)
  | If of expr * expr * expr
  | Let of string * expr * expr  (** lazy local binding *)

type pat =
  | PVar of string
  | PInt of int
  | PCon of string * pat list

type equation = { fname : string; pats : pat list; rhs : expr }

type program = equation list

let arity_of (p : program) (f : string) : int option =
  List.find_opt (fun e -> String.equal e.fname f) p
  |> Option.map (fun e -> List.length e.pats)

let functions (p : program) : (string * int) list =
  List.fold_left
    (fun acc e ->
      let key = (e.fname, List.length e.pats) in
      if List.mem key acc then acc else key :: acc)
    [] p
  |> List.rev

let equations_of (p : program) (f : string) : equation list =
  List.filter (fun e -> String.equal e.fname f) p

(* --- constructors appearing in a program -------------------------------- *)

let rec pat_cons acc = function
  | PVar _ | PInt _ -> acc
  | PCon (c, ps) ->
      List.fold_left pat_cons ((c, List.length ps) :: acc) ps

let rec expr_cons acc = function
  | Var _ | Int _ -> acc
  | Con (c, es) ->
      List.fold_left expr_cons ((c, List.length es) :: acc) es
  | App (_, es) | Prim (_, es) -> List.fold_left expr_cons acc es
  | If (c, t, e) -> expr_cons (expr_cons (expr_cons acc c) t) e
  | Let (_, e1, e2) -> expr_cons (expr_cons acc e1) e2

(** All constructor/arity pairs used anywhere in the program. *)
let constructors (p : program) : (string * int) list =
  List.fold_left
    (fun acc eq ->
      let acc = List.fold_left pat_cons acc eq.pats in
      expr_cons acc eq.rhs)
    [ ("[]", 0); (":", 2); ("True", 0); ("False", 0) ]
    p
  |> List.sort_uniq compare

(* --- variables ----------------------------------------------------------- *)

let rec pat_vars acc = function
  | PVar v -> v :: acc
  | PInt _ -> acc
  | PCon (_, ps) -> List.fold_left pat_vars acc ps

let rec free_vars bound acc = function
  | Var v -> if List.mem v bound then acc else v :: acc
  | Int _ -> acc
  | Con (_, es) | App (_, es) | Prim (_, es) ->
      List.fold_left (free_vars bound) acc es
  | If (c, t, e) ->
      List.fold_left (free_vars bound) acc [ c; t; e ]
  | Let (x, e1, e2) ->
      free_vars (x :: bound) (free_vars bound acc e1) e2

(* --- printing ------------------------------------------------------------ *)

let rec expr_to_string = function
  | Var v -> v
  | Int i -> string_of_int i
  | Con (":", [ h; t ]) ->
      Printf.sprintf "(%s : %s)" (expr_to_string h) (expr_to_string t)
  | Con (c, []) -> c
  | Con (c, es) ->
      Printf.sprintf "%s(%s)" c (String.concat ", " (List.map expr_to_string es))
  | App (f, []) -> f ^ "()"
  | App (f, es) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string es))
  | Prim (op, [ a; b ]) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) op (expr_to_string b)
  | Prim (op, es) ->
      Printf.sprintf "%s(%s)" op (String.concat ", " (List.map expr_to_string es))
  | If (c, t, e) ->
      Printf.sprintf "(if %s then %s else %s)" (expr_to_string c)
        (expr_to_string t) (expr_to_string e)
  | Let (x, e1, e2) ->
      Printf.sprintf "(let %s = %s in %s)" x (expr_to_string e1)
        (expr_to_string e2)

let rec pat_to_string = function
  | PVar v -> v
  | PInt i -> string_of_int i
  | PCon (":", [ h; t ]) ->
      Printf.sprintf "(%s : %s)" (pat_to_string h) (pat_to_string t)
  | PCon (c, []) -> c
  | PCon (c, ps) ->
      Printf.sprintf "%s(%s)" c (String.concat ", " (List.map pat_to_string ps))

let equation_to_string eq =
  match eq.pats with
  | [] -> Printf.sprintf "%s = %s;" eq.fname (expr_to_string eq.rhs)
  | ps ->
      Printf.sprintf "%s(%s) = %s;" eq.fname
        (String.concat ", " (List.map pat_to_string ps))
        (expr_to_string eq.rhs)
