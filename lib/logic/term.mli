(** First-order terms, the common currency of every engine and analysis
    in this repository.

    The representation is interned and hash-consed:

    - functor and atom names are interned through {!Symbol}, so every
      [Atom]/[Struct] carries one canonical [string] instance per name
      and name equality on stored terms degenerates to pointer equality
      inside [String.equal];
    - every [Struct] node carries a packed meta word holding its
      precomputed structural hash, node count, and ground flag, so
      {!hash}, {!size}, and {!is_ground} are O(1);
    - {e ground} [Struct] nodes are hash-consed through a weak table
      and [Atom] nodes are unique per name, so structurally equal
      ground callable terms are physically equal and {!equal} is
      physical-equality-first with a cheap structural fallback.
      Non-ground nodes (rebuilt with fresh variables on every clause
      activation, so never shareable) are allocated plainly — they
      still carry the meta word.

    The type is [private]: pattern matching works as before (the meta
    word shows up as a third [Struct] field, match it with [_]), but
    construction must go through {!var}, {!int}, {!atom}, {!mk},
    {!mkl}, and friends, which maintain the interning invariants.
    Never mutate an argument array reached through a pattern match.

    Variables are identified by integers drawn from a global supply; the
    supply can be reset for deterministic tests. *)

type t = private
  | Var of int
  | Int of int
  | Atom of string
  | Struct of string * t array * int
      (** [Struct (f, args, meta)]: [f] is the interned functor name and
          [meta] the packed hash/size/ground word (an implementation
          detail — always match it with [_]). *)

(** {2 Variable supply} *)

val fresh_var : unit -> t
(** A variable with a globally fresh id. *)

val fresh_id : unit -> int

val reset_gensym : unit -> unit
(** Reset the global supply.  Only for tests needing reproducible
    numbering. *)

(** {2 Construction} *)

val var : int -> t
(** The variable with id [i].  Nodes for small ids are preallocated. *)

val int : int -> t
(** An integer constant.  Nodes for small values are preallocated. *)

val atom : string -> t
(** The unique [Atom] node for this name (interns the name). *)

val mk : string -> t array -> t
(** [mk name args] is [atom name] when [args] is empty, otherwise the
    [Struct] node (hash-consed when ground).  The array is owned by the
    term afterwards and must not be mutated. *)

val mkl : string -> t list -> t

val rebuild : t -> t array -> t
(** [rebuild t args] is the term with [t]'s functor and the given
    arguments (hash-consed when ground); [t] must be a [Struct].
    Skips the symbol-table lookup — use when rewriting the arguments
    of an existing node. *)

val true_ : t
val fail_ : t
val nil : t
val cons : t -> t -> t
val of_list : t list -> t

(** {2 Inspection} *)

val functor_of : t -> (string * int) option
(** Name and arity of a callable term; [None] for variables and
    integers. *)

val args_of : t -> t array
(** Arguments of a [Struct]; [[||]] otherwise.  The live array — do not
    mutate. *)

val is_callable : t -> bool

val is_ground : t -> bool
(** O(1): leaves answer directly, [Struct] reads its meta word. *)

val vars : t -> int list
(** Variable ids in first-occurrence order, without duplicates.  Ground
    subterms are skipped without traversal. *)

val fold_vars : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Fold over all variable occurrences; ground subterms are skipped. *)

val occurs : int -> t -> bool
(** Does variable [id] occur in the term?  Short-circuits on the first
    occurrence and skips ground subterms in O(1). *)

val size : t -> int
(** Node count; used for table-space accounting.  O(1): [Struct] nodes
    store their count in the meta word (saturating at 2{^30}-1). *)

val depth : t -> int

(** {2 Comparison} *)

val equal : t -> t -> bool
(** Structural equality.  Physically equal terms short-circuit; the
    fallback rejects on the meta word before touching children, and the
    hash-consing invariant keeps the recursion shallow. *)

val compare : t -> t -> int
(** Total order: [Var < Int < Atom < Struct], then by id / value / name
    / arity / arguments — the same order as the pre-interning
    representation. *)

val hash : t -> int
(** O(1) for [Struct] (precomputed); cheap for leaves.  Consistent with
    {!equal}. *)

(** {2 Transformation} *)

val map_vars : (int -> t) -> t -> t
(** Apply a function to every variable, rebuilding the term.  Ground
    subterms and unchanged nodes are returned as-is (shared). *)

val rename : t -> t
(** Rename all variables to fresh ones, consistently. *)

(** {2 Conjunctions and lists} *)

val conjuncts : t -> t list
(** Flatten a [','/2] tree into its conjuncts; [true] flattens to [].
    Linear in the tree size regardless of association. *)

val conj : t list -> t

val list_elements : t -> t list option
(** Elements of a proper list term, or [None]. *)
