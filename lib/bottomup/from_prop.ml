(** Convert abstract analysis programs (Prop groundness clauses from
    {!Prax_ground.Transform}, or strictness clauses from
    [Prax_strict.Transform]) into pure Datalog for the bottom-up engine:

    - disjunctions are expanded into alternative rule bodies;
    - [=] literals are solved statically by substitution;
    - [iff/k] literals become an extensional relation [$iff_k], whose
      ground extension is loaded as facts;
    - facts containing variables (e.g. [sp_f(n, _, _)]) are grounded over
      the finite value domain;
    - remaining unsafe head variables are guarded by a [$dom] literal
      enumerating the domain. *)

open Prax_logic

exception Not_convertible of string

(* expand ;/2 into alternative conjunction lists *)
let rec alternatives (g : Term.t) : Term.t list list =
  match g with
  | Term.Struct (";", [| a; b |], _) -> alternatives a @ alternatives b
  | Term.Struct (",", [| a; b |], _) ->
      List.concat_map
        (fun la -> List.map (fun lb -> la @ lb) (alternatives b))
        (alternatives a)
  | Term.Atom "true" -> [ [] ]
  | g -> [ [ g ] ]

let body_alternatives (body : Term.t list) : Term.t list list =
  List.fold_left
    (fun acc g ->
      List.concat_map
        (fun prefix -> List.map (fun alt -> prefix @ alt) (alternatives g))
        acc)
    [ [] ] body

(* solve = literals statically; returns None if the body fails *)
let solve_equalities (goals : Term.t list) : (Subst.t * Term.t list) option =
  let rec go s acc = function
    | [] -> Some (s, List.rev acc)
    | Term.Struct ("=", [| a; b |], _) :: rest -> (
        match Unify.unify s a b with
        | Some s' -> go s' acc rest
        | None -> None)
    | Term.Atom ("fail" | "false") :: _ -> None
    | g :: rest -> go s (g :: acc) rest
  in
  go Subst.empty [] goals

let atom_of_term (t : Term.t) : Datalog.atom =
  match t with
  | Term.Atom name -> { Datalog.pred = (name, 0); args = [||] }
  | Term.Struct ("iff", args, _) ->
      {
        Datalog.pred = (Printf.sprintf "$iff_%d" (Array.length args), Array.length args);
        args;
      }
  | Term.Struct (name, args, _) -> { Datalog.pred = (name, Array.length args); args }
  | _ -> raise (Not_convertible (Pretty.term_to_string t))

(* ground the variables of a fact over the value domain *)
let ground_fact domain (a : Datalog.atom) : Datalog.atom list =
  let vars =
    Array.to_list a.Datalog.args
    |> List.concat_map (function Term.Var v -> [ v ] | _ -> [])
    |> List.sort_uniq Int.compare
  in
  let rec assignments = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = assignments rest in
        List.concat_map (fun c -> List.map (fun t -> (v, c) :: t) tails) domain
  in
  List.map
    (fun env ->
      {
        a with
        Datalog.args =
          Array.map
            (function
              | Term.Var v -> List.assoc v env
              | c -> c)
            a.Datalog.args;
      })
    (assignments vars)

(* safety: head variables not bound in the body get a $dom guard *)
let dom_pred = ("$dom", 1)

let make_safe domain_needed (head : Datalog.atom) (body : Datalog.atom list) :
    Datalog.atom list =
  let body_vars =
    List.concat_map
      (fun a ->
        Array.to_list a.Datalog.args
        |> List.filter_map (function Term.Var v -> Some v | _ -> None))
      body
  in
  let unsafe =
    Array.to_list head.Datalog.args
    |> List.filter_map (function
         | Term.Var v when not (List.mem v body_vars) -> Some v
         | _ -> None)
    |> List.sort_uniq Int.compare
  in
  if unsafe <> [] then domain_needed := true;
  body
  @ List.map
      (fun v -> { Datalog.pred = dom_pred; args = [| Term.var v |] })
      unsafe

(** Convert abstract clauses to Datalog rules over the given finite value
    domain (e.g. [true/false] atoms for Prop, [e/d/n] for strictness).
    Returns the rules including the needed [$iff]/[$dom] facts. *)
let convert ~(domain : Term.t list) (clauses : Parser.clause list) :
    Datalog.rule list =
  let iff_arities = ref [] in
  let domain_needed = ref false in
  let convert_alternative c goals : Datalog.rule list =
    match solve_equalities goals with
    | None -> []
    | Some (s, goals') ->
        let resolve = Subst.resolve s in
        let head = atom_of_term (resolve c.Parser.head) in
        let body = List.map (fun g -> atom_of_term (resolve g)) goals' in
        List.iter
          (fun (a : Datalog.atom) ->
            let name, k = a.Datalog.pred in
            if
              String.length name >= 5
              && String.equal (String.sub name 0 5) "$iff_"
              && not (List.mem k !iff_arities)
            then iff_arities := k :: !iff_arities)
          body;
        (* ground any variable-containing facts *)
        if body = [] then
          List.map
            (fun h -> { Datalog.head = h; body = [] })
            (ground_fact domain head)
        else
          [ { Datalog.head; body = make_safe domain_needed head body } ]
  in
  let rules =
    List.concat_map
      (fun c ->
        List.concat_map (convert_alternative c) (body_alternatives c.Parser.body))
      clauses
  in
  let iff_facts =
    List.concat_map
      (fun k ->
        (* k = total arity of the iff atom (1 lhs + k-1 rhs) *)
        Prax_prop.Iff.extension (k - 1)
        |> List.map (fun row ->
               {
                 Datalog.head =
                   {
                     Datalog.pred = (Printf.sprintf "$iff_%d" k, k);
                     args =
                       Array.of_list
                         (List.map
                            (fun b ->
                              Term.atom (if b then "true" else "false"))
                            row);
                   };
                 body = [];
               }))
      !iff_arities
  in
  let dom_facts =
    if !domain_needed then
      List.map
        (fun c ->
          { Datalog.head = { Datalog.pred = dom_pred; args = [| c |] }; body = [] })
        domain
    else []
  in
  rules @ iff_facts @ dom_facts

let bool_domain = [ Term.atom "true"; Term.atom "false" ]
let demand_domain = [ Term.atom "e"; Term.atom "d"; Term.atom "n" ]
