(** Prax — practical program analysis on a general-purpose tabled logic
    programming system.

    This is the umbrella API of the reproduction of Dawson, Ramakrishnan
    & Warren, "Practical Program Analysis Using General Purpose Logic
    Programming Systems — A Case Study" (PLDI 1996).  It re-exports every
    subsystem and offers the three analyzers behind one-call entry
    points.

    {2 Subsystem map}

    - {!Logic}: terms, unification, the Prolog reader, clause store, SLD
      resolution — the ordinary-Prolog half of the XSB substitute.
    - {!Tabling}: the tabled (OLDT/SLG) engine with variant-based call
      and answer tables; {!Tabling.Supplement} implements supplementary
      tabling (Section 4.2).
    - {!Prop}: the Prop abstract domain (truth tables, [iff], minimized
      formula rendering).
    - {!Bdd}: ROBDDs, the alternative Prop representation.
    - {!Groundness}: Prop-based groundness analysis (Figure 1, Tables
      1–2).
    - {!Fp}: the lazy first-order functional language (EQUALS substitute)
      with its call-by-need interpreter.
    - {!Strictness}: demand-propagation strictness analysis (Figure 3,
      Table 3).
    - {!Depthk}: groundness with depth-k term abstraction (Section 5,
      Table 4).
    - {!Gaia}: the special-purpose Prop abstract interpreter used as the
      Table 2 comparator.
    - {!Bottomup}: semi-naive Datalog with magic sets, the Coral-style
      baseline (Section 7).
    - {!Benchdata}: the 22-program benchmark corpus with the paper's
      reported numbers. *)

(** Engine observability: process-wide counters, gauges, and phase
    timers with machine-readable snapshots (see docs/METRICS.md). *)
module Metrics = Prax_metrics.Metrics

(** Resource governance: composable budgets (deadline, steps, table
    space), graceful degradation to sound partial results, and the
    fault-injection harness (see docs/ROBUSTNESS.md). *)
module Guard = Prax_guard.Guard

module Inject = Prax_guard.Inject

(** The unified analysis pipeline: the first-class analysis interface,
    generic [prax.report] reports, and the process-wide registry every
    front-end dispatches through (see docs/ANALYSES.md). *)
module Analysis = Prax_analysis.Analysis

(** The five shipped analyses, self-registered; call
    [Analyses.ensure ()] before the first registry lookup. *)
module Analyses = Prax_analyses.Analyses

(** Supervised batch evaluation: process-isolated worker fleet with a
    per-job watchdog, retry/backoff, and a degradation ladder (see
    docs/ROBUSTNESS.md). *)
module Serve = Prax_serve.Serve

(** Shared-memory parallel batch: worker domains (OCaml multicore) over
    the same job/worker interface — no fork, no watchdog, deterministic
    input-order reports ([xanalyze batch --runner domains]). *)
module Domains = Prax_serve.Domains

(** Crash-safe persistent store of analysis outcomes: atomic versioned
    snapshots with CRC trailers, warm-start resume for batches. *)
module Store = Prax_store.Store

(** The resident analysis daemon ([praxd]): a Unix-socket server over
    the worker fleet with admission control (token buckets, queue-depth
    backpressure, load shedding) and graceful drain, speaking the
    newline-delimited-JSON [prax.wire] protocol. *)
module Daemon = struct
  module Wire = Prax_daemon.Wire
  module Admission = Prax_daemon.Admission
  module Pressure = Prax_daemon.Pressure
  module Lru = Prax_daemon.Lru
  module Daemon = Prax_daemon.Daemon
  module Client = Prax_daemon.Client
end

(** The bench-run store: persistent run directories with repeat-sample
    statistics, the noise-aware A/B comparator, and the regression-gate
    logic behind [bench run|ab|gate] (see docs/BENCHMARKING.md). *)
module Benchrun = Prax_benchrun.Benchrun

(** Incremental re-analysis: the clause-level dependency graph with its
    Tarjan condensation and closure digests, the per-SCC table-fragment
    cache with splice-back evaluation, and the deterministic mutation
    generator behind the equality drills (see docs/INCREMENTAL.md). *)
module Incr = struct
  module Depgraph = Prax_incr.Depgraph
  module Incr = Prax_incr.Incr
  module Mutate = Prax_incr.Mutate
end

module Logic = struct
  module Term = Prax_logic.Term
  module Subst = Prax_logic.Subst
  module Unify = Prax_logic.Unify
  module Canon = Prax_logic.Canon
  module Ops = Prax_logic.Ops
  module Lexer = Prax_logic.Lexer
  module Parser = Prax_logic.Parser
  module Pretty = Prax_logic.Pretty
  module Database = Prax_logic.Database
  module Sld = Prax_logic.Sld
  module Diag = Prax_logic.Diag
  module Vec = Prax_logic.Vec
end

module Tabling = struct
  module Engine = Prax_tabling.Engine
  module Supplement = Prax_tabling.Supplement
end

module Prop = struct
  module Bf = Prax_prop.Bf
  module Qm = Prax_prop.Qm
  module Iff = Prax_prop.Iff
end

module Bdd = Prax_bdd.Bdd

module Groundness = struct
  module Transform = Prax_ground.Transform
  module Analyze = Prax_ground.Analyze
  module Def = Prax_ground.Def

  (** Analyze a logic program's groundness; returns the per-predicate
      report. *)
  let analyze = Prax_ground.Analyze.analyze
end

module Fp = struct
  module Ast = Prax_fp.Ast
  module Lexer = Prax_fp.Flexer
  module Parser = Prax_fp.Fparser
  module Check = Prax_fp.Check
  module Eval = Prax_fp.Eval
end

module Strictness = struct
  module Demand = Prax_strict.Demand
  module Transform = Prax_strict.Transform
  module Analyze = Prax_strict.Analyze

  let analyze = Prax_strict.Analyze.analyze
end

module Depthk = struct
  module Domain = Prax_depthk.Domain
  module Analyze = Prax_depthk.Analyze

  let analyze = Prax_depthk.Analyze.analyze
end

module Gaia = struct
  module Boolfun = Prax_gaia.Boolfun
  module Absint = Prax_gaia.Absint
  module Analyze = Prax_gaia.Analyze
end

module Bottomup = struct
  module Datalog = Prax_bottomup.Datalog
  module Magic = Prax_bottomup.Magic
  module From_prop = Prax_bottomup.From_prop
end

module Benchdata = struct
  module Registry = Prax_benchdata.Registry
end

(** Section 7 extension: demand-driven dataflow analysis of imperative
    programs as tabled logic programs. *)
module Dataflow = struct
  module Cfg = Prax_dataflow.Cfg
  module Encode = Prax_dataflow.Encode
  module Analyze = Prax_dataflow.Analyze
end

(** Section 6.1 extension: analysis over an infinite domain with
    on-the-fly widening through the engine's widening hook. *)
module Infinite = struct
  module Widen = Prax_infinite.Widen
end

(** Section 6.1 extension: Hindley–Milner type analysis by occur-check
    unification over the logic substrate. *)
module Hm = struct
  module Infer = Prax_hm.Infer
end
