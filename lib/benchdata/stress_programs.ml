(** Worst-case groundness programs, after Genaim–Howe–Codish ("Worst-case
    groundness analysis"): tiny sources whose Prop abstraction has
    exponentially many distinct answer variants, so the tabled
    (mode=dynamic) analysis exhausts any step budget while the def
    domain (mode=def) finishes in a handful of implications.

    Two shapes, generated rather than hand-written so the sizes stay
    honest:

    - [product n]: n independent generators, each leaving its argument
      either ground or open — 2^n answer variants for [gp_p/n];
    - [chain n]: a chain of flip/2 goals sharing neighbouring
      variables — answer variants grow with the number of ways to cut
      the chain into ground prefixes and aliased runs.

    The files under examples/stress/ are these exact strings
    (test_benchdata locks the sync), so CLI runs and CI exercise the
    same programs the bench harness measures. *)

let args n = List.init n (fun i -> Printf.sprintf "X%d" (i + 1))

(** 2^n distinct answers: every argument independently ground or open. *)
let product n =
  let xs = args n in
  Printf.sprintf "gen(a).\ngen(_).\np(%s) :-\n    %s.\n"
    (String.concat ", " xs)
    (String.concat ",\n    " (List.map (fun x -> "gen(" ^ x ^ ")") xs))

(** Chained flips: each goal either aliases its arguments' groundness or
    grounds the left one, multiplying variants along the chain. *)
let chain n =
  let xs = args n in
  let pairs =
    List.map2
      (fun a b -> Printf.sprintf "flip(%s, %s)" a b)
      (List.filteri (fun i _ -> i < n - 1) xs)
      (List.tl xs)
  in
  Printf.sprintf
    "flip(X, Y) :- X = Y.\nflip(X, Y) :- X = a.\np(%s) :-\n    %s.\n"
    (String.concat ", " xs)
    (String.concat ",\n    " pairs)
