lib/benchdata/logic_peep.ml:
