(** Tokenizer for the Prolog subset read by {!Parser}.

    Follows standard Prolog lexical conventions: alphanumeric and symbolic
    atoms, quoted atoms, variables, integers (decimal and [0'c] character
    codes), double-quoted strings (read as code lists), [%] and [/* */]
    comments.  A period followed by layout ends a clause. *)

type token =
  | TAtom of string
  | TVar of string
  | TInt of int
  | TStr of string
  | TLpar of bool  (** [true] iff immediately attached to the previous atom *)
  | TRpar
  | TLbracket
  | TRbracket
  | TLbrace
  | TRbrace
  | TComma
  | TBar
  | TEnd  (** end of clause: [.] followed by layout *)
  | TEOF

exception Lex_error of string * int  (** message, position *)

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_lower c || is_upper c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_symbol_char = function
  | '+' | '-' | '*' | '/' | '\\' | '^' | '<' | '>' | '=' | '~' | ':' | '.'
  | '?' | '@' | '#' | '&' | '$' ->
      true
  | _ -> false

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let rec skip_layout st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_layout st
  | Some '%' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_layout st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec go () =
        match peek st with
        | None -> raise (Lex_error ("unterminated /* comment", st.pos))
        | Some '*' when peek2 st = Some '/' ->
            advance st;
            advance st
        | Some _ ->
            advance st;
            go ()
      in
      go ();
      skip_layout st
  | _ -> ()

let take_while st pred =
  let start = st.pos in
  while match peek st with Some c when pred c -> true | _ -> false do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_escape st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some 'a' -> advance st; '\007'
  | Some 'b' -> advance st; '\b'
  | Some 'f' -> advance st; '\012'
  | Some 'v' -> advance st; '\011'
  | Some '0' -> advance st; '\000'
  | Some c -> advance st; c
  | None -> raise (Lex_error ("dangling escape", st.pos))

let read_quoted st quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Lex_error ("unterminated quoted token", st.pos))
    | Some c when c = quote ->
        advance st;
        if peek st = Some quote then begin
          advance st;
          Buffer.add_char buf quote;
          go ()
        end
    | Some '\\' ->
        advance st;
        if peek st = Some '\n' then advance st
        else Buffer.add_char buf (read_escape st);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

(** [next st] returns the next token.  [prev_atomish] tells whether the
    previous token could be a functor name, for the attached-paren rule. *)
let next st ~prev_atomish =
  skip_layout st;
  match peek st with
  | None -> TEOF
  | Some '(' ->
      (* attachment was decided by the caller from raw adjacency *)
      advance st;
      TLpar prev_atomish
  | Some ')' -> advance st; TRpar
  | Some '[' -> advance st; TLbracket
  | Some ']' -> advance st; TRbracket
  | Some '{' -> advance st; TLbrace
  | Some '}' -> advance st; TRbrace
  | Some ',' -> advance st; TComma
  | Some '|' -> advance st; TBar
  | Some '!' -> advance st; TAtom "!"
  | Some ';' -> advance st; TAtom ";"
  | Some '\'' ->
      advance st;
      TAtom (read_quoted st '\'')
  | Some '"' ->
      advance st;
      TStr (read_quoted st '"')
  | Some '0' when peek2 st = Some '\'' ->
      advance st;
      advance st;
      (match peek st with
      | Some '\\' ->
          advance st;
          TInt (Char.code (read_escape st))
      | Some c ->
          advance st;
          TInt (Char.code c)
      | None -> raise (Lex_error ("dangling 0'", st.pos)))
  | Some c when is_digit c ->
      let digits = take_while st is_digit in
      TInt (int_of_string digits)
  | Some c when is_lower c -> TAtom (take_while st is_alnum)
  | Some c when is_upper c -> TVar (take_while st is_alnum)
  | Some '.' -> (
      (* end of clause iff followed by layout or EOF or a % comment *)
      match peek2 st with
      | None | Some (' ' | '\t' | '\n' | '\r' | '%') ->
          advance st;
          TEnd
      | Some _ -> TAtom (take_while st is_symbol_char))
  | Some c when is_symbol_char c -> TAtom (take_while st is_symbol_char)
  | Some c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, st.pos))

(** Tokenize a whole source string. *)
let tokenize (src : string) : token list =
  let st = { src; pos = 0 } in
  let rec go acc prev_atomish =
    (* decide attachment from raw adjacency before skipping layout *)
    let attached = prev_atomish && peek st = Some '(' in
    let tok = next st ~prev_atomish:attached in
    match tok with
    | TEOF -> List.rev (TEOF :: acc)
    | _ ->
        let atomish =
          match tok with TAtom _ | TVar _ | TRpar | TRbracket -> true | _ -> false
        in
        go (tok :: acc) atomish
  in
  go [] false

let token_to_string = function
  | TAtom a -> Printf.sprintf "atom(%s)" a
  | TVar v -> Printf.sprintf "var(%s)" v
  | TInt i -> Printf.sprintf "int(%d)" i
  | TStr s -> Printf.sprintf "str(%S)" s
  | TLpar b -> if b then "attached(" else "("
  | TRpar -> ")"
  | TLbracket -> "["
  | TRbracket -> "]"
  | TLbrace -> "{"
  | TRbrace -> "}"
  | TComma -> ","
  | TBar -> "|"
  | TEnd -> "."
  | TEOF -> "<eof>"
