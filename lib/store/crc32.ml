(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The snapshot trailer needs an error-detecting code that catches the
    failure modes a result store actually sees — truncated writes,
    single flipped bits/bytes from storage rot, swapped blocks — without
    pulling in a compression library the container does not carry.
    CRC-32 detects all single- and double-bit errors, any odd number of
    bit errors, and all burst errors up to 32 bits; collisions require
    adversarial corruption, which a local result cache does not defend
    against (the store is a cache, not a security boundary — a miss or a
    false recompute is always safe). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

(** [update crc s pos len] folds bytes [pos..pos+len-1] of [s] into a
    running CRC (start from [0l] via {!string_}). *)
let update (crc : int32) (s : string) pos len : int32 =
  let t = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl) in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string_ (s : string) : int32 = update 0l s 0 (String.length s)

let to_hex (c : int32) : string = Printf.sprintf "%08lx" c
