examples/lazy_optimizer.ml: Fp List Option Prax Prax_strict Printf Strictness String
