examples/lazy_optimizer.mli:
