(** Control-flow graphs of a small imperative language, the substrate for
    the dataflow-analysis extension the paper sketches in Section 7
    (Reps's demand interprocedural analysis in a logic database).

    A program is a set of procedures; each procedure is a graph of
    numbered nodes with statements.  Variables are global (as in the
    classic demand-analysis examples), so interprocedural effects flow
    through call/return edges without parameter plumbing. *)

type stmt =
  | Assign of string * string list
      (** [Assign (x, uses)]: x := e where e reads [uses] *)
  | Test of string list  (** branch condition reading the listed variables *)
  | Call of string  (** call of a procedure by name *)
  | Entry
  | Exit
  | Skip

type node = { id : int; stmt : stmt }

type proc = {
  pname : string;
  nodes : node list;
  edges : (int * int) list;  (** intraprocedural edges *)
  entry : int;
  exit : int;
}

type program = proc list

exception Parse_error of string

let defs = function Assign (x, _) -> [ x ] | _ -> []

let uses = function
  | Assign (_, us) -> us
  | Test us -> us
  | Call _ | Entry | Exit | Skip -> []

let find_proc (p : program) name =
  List.find_opt (fun pr -> String.equal pr.pname name) p

let node_of (pr : proc) id = List.find (fun n -> n.id = id) pr.nodes

(* --- the textual format --------------------------------------------------- *)

(* One directive per line (# comments and blank lines ignored):
     proc NAME
     node ID entry|exit|skip
     node ID assign DEF [USES...]
     node ID test [USES...]
     node ID call PROC
     edge A B
   Entry and exit points are inferred: each procedure must contain
   exactly one [entry] and one [exit] node.  This is the [.cfg] source
   format the analysis registry accepts (docs/ANALYSES.md). *)

let stmt_to_source = function
  | Entry -> "entry"
  | Exit -> "exit"
  | Skip -> "skip"
  | Call p -> "call " ^ p
  | Test uses -> String.concat " " ("test" :: uses)
  | Assign (x, uses) -> String.concat " " ("assign" :: x :: uses)

let to_source (p : program) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun pr ->
      Buffer.add_string buf (Printf.sprintf "proc %s\n" pr.pname);
      List.iter
        (fun n ->
          Buffer.add_string buf
            (Printf.sprintf "node %d %s\n" n.id (stmt_to_source n.stmt)))
        pr.nodes;
      List.iter
        (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" a b))
        pr.edges)
    p;
  Buffer.contents buf

let parse (src : string) : program =
  let err ln msg = raise (Parse_error (Printf.sprintf "line %d: %s" ln msg)) in
  let procs = ref [] in
  let cur : (string * node list ref * (int * int) list ref) option ref =
    ref None
  in
  let flush ln =
    Option.iter
      (fun (name, nodes, edges) ->
        let nodes = List.rev !nodes and edges = List.rev !edges in
        let unique stmt what =
          match List.filter (fun n -> n.stmt = stmt) nodes with
          | [ n ] -> n.id
          | _ ->
              err ln
                (Printf.sprintf "procedure %s needs exactly one %s node" name
                   what)
        in
        let entry = unique Entry "entry" and exit = unique Exit "exit" in
        procs := { pname = name; nodes; edges; entry; exit } :: !procs)
      !cur;
    cur := None
  in
  let words l =
    String.split_on_char ' ' l |> List.filter (fun w -> w <> "")
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match words line with
        | [ "proc"; name ] ->
            flush ln;
            cur := Some (name, ref [], ref [])
        | "node" :: id :: rest -> (
            let id =
              match int_of_string_opt id with
              | Some n -> n
              | None -> err ln (Printf.sprintf "bad node id %S" id)
            in
            let stmt =
              match rest with
              | [ "entry" ] -> Entry
              | [ "exit" ] -> Exit
              | [ "skip" ] -> Skip
              | [ "call"; p ] -> Call p
              | "test" :: uses -> Test uses
              | "assign" :: x :: uses -> Assign (x, uses)
              | _ -> err ln (Printf.sprintf "bad node statement %S" line)
            in
            match !cur with
            | Some (_, nodes, _) -> nodes := { id; stmt } :: !nodes
            | None -> err ln "node directive before any proc")
        | [ "edge"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b, !cur) with
            | Some a, Some b, Some (_, _, edges) -> edges := (a, b) :: !edges
            | _, _, None -> err ln "edge directive before any proc"
            | _ -> err ln (Printf.sprintf "bad edge %S" line))
        | _ -> err ln (Printf.sprintf "unrecognized directive %S" line))
    lines;
  flush (List.length lines);
  if !procs = [] then raise (Parse_error "empty CFG program");
  List.rev !procs

(* --- builders ------------------------------------------------------------ *)

(** Linear builder: statements become consecutive nodes [base..]; edges
    chain them; [entry]/[exit] nodes added around them. *)
let proc_of_stmts ~name ~base (stmts : stmt list) : proc =
  let entry = base in
  let body =
    List.mapi (fun i s -> { id = base + 1 + i; stmt = s }) stmts
  in
  let exit = base + 1 + List.length stmts in
  let nodes =
    ({ id = entry; stmt = Entry } :: body) @ [ { id = exit; stmt = Exit } ]
  in
  let ids = List.map (fun n -> n.id) nodes in
  let edges =
    List.map2
      (fun a b -> (a, b))
      (List.filteri (fun i _ -> i < List.length ids - 1) ids)
      (List.tl ids)
  in
  { pname = name; nodes; edges; entry; exit }

let add_edge pr e = { pr with edges = e :: pr.edges }

(** A synthetic workload for the benches: a procedure that is a ladder of
    [n] rungs — each rung defines a variable, tests it, and branches over
    the next rung — followed by a back edge making a loop.  Definitions
    made early must be chased through many nodes to answer a demand
    query at the bottom. *)
let ladder ~name ~base ~rungs : proc =
  let entry = base in
  let node id stmt = { id; stmt } in
  let nodes = ref [ node entry Entry ] in
  let edges = ref [] in
  let id = ref (entry + 1) in
  let prev = ref entry in
  for r = 0 to rungs - 1 do
    let var = Printf.sprintf "v%d" (r mod 8) in
    let def = !id in
    let test = !id + 1 in
    let skip = !id + 2 in
    id := !id + 3;
    nodes :=
      node skip Skip :: node test (Test [ var ])
      :: node def (Assign (var, [ Printf.sprintf "v%d" ((r + 1) mod 8) ]))
      :: !nodes;
    edges :=
      (!prev, def) :: (def, test) :: (test, skip) :: (def, skip) :: !edges;
    prev := skip
  done;
  let exit = !id in
  nodes := node exit Exit :: !nodes;
  edges := (!prev, exit) :: (exit - 1, entry + 1) :: !edges;
  {
    pname = name;
    nodes = List.rev !nodes;
    edges = List.rev !edges;
    entry;
    exit;
  }

(** The running example: main initializes, loops calling helper, then
    reads the results. *)
let example : program =
  let main =
    {
      pname = "main";
      nodes =
        [
          { id = 0; stmt = Entry };
          { id = 1; stmt = Assign ("x", []) };
          { id = 2; stmt = Assign ("y", []) };
          { id = 3; stmt = Test [ "x" ] };
          { id = 4; stmt = Call "helper" };
          { id = 5; stmt = Assign ("y", [ "x" ]) };
          { id = 6; stmt = Test [ "y" ] };
          { id = 7; stmt = Assign ("z", [ "y" ]) };
          { id = 8; stmt = Exit };
        ];
      edges =
        [ (0, 1); (1, 2); (2, 3); (3, 4); (3, 7); (4, 5); (5, 6); (6, 3);
          (6, 7); (7, 8) ];
      entry = 0;
      exit = 8;
    }
  in
  let helper =
    {
      pname = "helper";
      nodes =
        [
          { id = 10; stmt = Entry };
          { id = 11; stmt = Test [ "y" ] };
          { id = 12; stmt = Assign ("x", [ "y" ]) };
          { id = 13; stmt = Skip };
          { id = 14; stmt = Exit };
        ];
      edges = [ (10, 11); (11, 12); (11, 13); (12, 13); (13, 14) ];
      entry = 10;
      exit = 14;
    }
  in
  [ main; helper ]
