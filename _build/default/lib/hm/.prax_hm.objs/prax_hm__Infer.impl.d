lib/hm/infer.ml: Array Ast Canon Char Check Hashtbl Int List Prax_fp Prax_logic Pretty Printf String Subst Term Unify
