(* Tests for the tabled evaluation engine: termination on left recursion,
   variant-based call/answer tables, duplicate elimination, consumer
   resumption, and agreement with SLD where both terminate. *)

open Prax_logic
open Prax_tabling

let parse = Parser.parse_term
let show t = Pretty.term_to_string t

let engine_of ?mode src =
  let db = Database.create ?mode () in
  ignore (Database.load_string db src);
  Engine.create db

let query_strings e q = Engine.query e (parse q) |> List.map show

(* Left recursion: the canonical program no Prolog system terminates on,
   and the first thing a tabled system must get right. *)
let left_rec_path =
  "edge(a,b). edge(b,c). edge(c,d). edge(b,a).\n\
   path(X,Y) :- path(X,Z), edge(Z,Y).\n\
   path(X,Y) :- edge(X,Y)."

let test_left_recursion () =
  let e = engine_of left_rec_path in
  let sols = query_strings e "path(a, Y)" in
  Alcotest.(check (list string))
    "reachable from a"
    [ "path(a,a)"; "path(a,b)"; "path(a,c)"; "path(a,d)" ]
    (List.sort compare sols)

let test_right_recursion_same_answers () =
  let right =
    "edge(a,b). edge(b,c). edge(c,d). edge(b,a).\n\
     path(X,Y) :- edge(X,Y).\n\
     path(X,Y) :- edge(X,Z), path(Z,Y)."
  in
  let e1 = engine_of left_rec_path and e2 = engine_of right in
  Alcotest.(check (list string))
    "formulation-independent"
    (List.sort compare (query_strings e1 "path(X, Y)"))
    (List.sort compare (query_strings e2 "path(X, Y)"))

let test_cyclic_termination () =
  (* fully cyclic graph; non-tabled evaluation diverges *)
  let e =
    engine_of
      "edge(a,b). edge(b,c). edge(c,a).\n\
       path(X,Y) :- edge(X,Y).\n\
       path(X,Y) :- path(X,Z), path(Z,Y)."
  in
  Alcotest.(check int) "3x3 pairs" 9
    (List.length (query_strings e "path(X,Y)"))

let test_no_answer_loop_terminates () =
  (* p :- p has no answers; tabling must fail finitely *)
  let e = engine_of "p :- p. q(1)." in
  Alcotest.(check (list string)) "no answers" [] (query_strings e "p");
  Alcotest.(check (list string)) "rest of program alive" [ "q(1)" ]
    (query_strings e "q(X)")

let test_mutual_recursion () =
  let e =
    engine_of
      "even(0). even(s(N)) :- odd(N). odd(s(N)) :- even(N)."
  in
  Alcotest.(check bool) "even 4" true
    (query_strings e "even(s(s(s(s(0)))))" <> []);
  Alcotest.(check bool) "odd 4 fails" true
    (query_strings e "odd(s(s(s(s(0)))))" = [])

let test_variant_tables () =
  let e = engine_of left_rec_path in
  ignore (Engine.query e (parse "path(a, Y)"));
  ignore (Engine.query e (parse "path(a, X)"));
  (* the second query is a variant of the first: no new table entry *)
  let calls = Engine.calls_for e ("path", 2) in
  Alcotest.(check bool) "variant call shared" true (List.length calls >= 1);
  let open_before = List.length (Engine.calls e) in
  ignore (Engine.query e (parse "path(a, Z)"));
  Alcotest.(check int) "no growth on variant re-query" open_before
    (List.length (Engine.calls e))

let test_duplicate_answers_filtered () =
  let e = engine_of "p(a). p(a). p(a). p(b)." in
  let sols = query_strings e "p(X)" in
  Alcotest.(check (list string)) "dedup" [ "p(a)"; "p(b)" ]
    (List.sort compare sols);
  let st = Engine.stats e in
  Alcotest.(check int) "2 distinct answers" 2 st.Engine.answers;
  Alcotest.(check int) "2 duplicates filtered" 2 st.Engine.duplicates

let test_call_table_records_input_modes () =
  (* the paper's "input groundness for free": body calls with ground
     first argument show up as more specific call variants *)
  let e =
    engine_of
      "top(Y) :- helper(a, Y).\nhelper(X, f(X))."
  in
  ignore (Engine.query e (parse "top(Y)"));
  let calls = Engine.calls_for e ("helper", 2) in
  (match calls with
  | [ c ] -> (
      match Term.args_of c with
      | [| Term.Atom "a"; Term.Var _ |] -> ()
      | _ -> Alcotest.failf "expected helper(a,_), got %s" (show c))
  | _ -> Alcotest.fail "expected exactly one call variant")

let test_answers_for () =
  let e = engine_of left_rec_path in
  ignore (Engine.query e (parse "path(a, Y)"));
  let answers = Engine.answers_for e ("path", 2) in
  Alcotest.(check int) "4 answers" 4 (List.length answers)

let test_nonground_answers () =
  let e = engine_of "p(X, X). p(a, b)." in
  let sols = query_strings e "p(U, V)" in
  Alcotest.(check (list string)) "most general answer kept"
    [ "p(A,A)"; "p(a,b)" ]
    (List.sort compare sols)

let test_agreement_with_sld () =
  let src =
    "app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).\n\
     nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R)."
  in
  let db = Database.create () in
  ignore (Database.load_string db src);
  let e = Engine.create db in
  let goal = parse "nrev([1,2,3,4], R)" in
  let tabled = Engine.query e goal |> List.map show in
  let sld =
    Sld.solutions db goal
    |> List.map (fun s -> show (Canon.canonical s goal))
  in
  Alcotest.(check (list string)) "tabled = sld" sld tabled

let test_builtin_registration () =
  let e = engine_of "p(X, Y) :- myplus(X, 1, Y)." in
  Engine.register_builtin e "myplus" 3 (fun eng s args sc ->
      match (Subst.walk s args.(0), Subst.walk s args.(1)) with
      | Term.Int a, Term.Int b -> (
          match (Engine.concrete_hooks.Engine.unify) s args.(2) (Term.int (a + b)) with
          | Some s' -> sc s'
          | None -> ())
      | _ ->
          ignore eng;
          ());
  Alcotest.(check (list string)) "builtin used" [ "p(41,42)" ]
    (query_strings e "p(41, Y)")

let test_table_space_positive () =
  let e = engine_of left_rec_path in
  ignore (Engine.query e (parse "path(X, Y)"));
  Alcotest.(check bool) "space accounted" true (Engine.table_space_bytes e > 0)

let test_reset_tables () =
  let e = engine_of left_rec_path in
  ignore (Engine.query e (parse "path(X, Y)"));
  Engine.reset_tables e;
  Alcotest.(check int) "tables empty" 0 (List.length (Engine.calls e));
  (* engine still usable after reset *)
  Alcotest.(check int) "re-run ok" 4
    (List.length (query_strings e "path(a, Y)"))

let test_open_call_strategy () =
  (* Section 6.2: table only the open call; specific calls filter its
     answers (forward subsumption).  Same answers, fewer table entries. *)
  let src =
    "edge(a,b). edge(b,c). edge(c,d).\n\
     path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y)."
  in
  let db = Database.create () in
  ignore (Database.load_string db src);
  let ev = Engine.create db in
  let eo = Engine.create ~open_calls:true db in
  List.iter
    (fun q ->
      Alcotest.(check (list string))
        (q ^ " same answers")
        (List.sort compare (query_strings ev q))
        (List.sort compare (query_strings eo q)))
    [ "path(a, Y)"; "path(X, d)"; "path(b, c)"; "path(X, Y)" ];
  Alcotest.(check bool) "fewer or equal table entries" true
    (List.length (Engine.calls eo) <= List.length (Engine.calls ev));
  (* under the open strategy, every tabled call variant is open *)
  List.iter
    (fun c ->
      match Term.args_of c with
      | [||] -> ()
      | args ->
          Alcotest.(check bool) "entry is an open call" true
            (Array.for_all (function Term.Var _ -> true | _ -> false) args))
    (Engine.calls eo)

let test_nontabled_predicates () =
  let db = Database.create () in
  ignore
    (Database.load_string db
       "double(X, Y) :- plusx(X, X, Y).\nplusx(a, a, aa).");
  let e = Engine.create ~tabled:(fun (n, _) -> n <> "plusx") db in
  Alcotest.(check (list string)) "mixed tabled/nontabled" [ "double(a,aa)" ]
    (query_strings e "double(a, Y)");
  Alcotest.(check (list string)) "only tabled preds in table" [ "double/2" ]
    (Engine.calls e
    |> List.filter_map Term.functor_of
    |> List.map (fun (n, a) -> Printf.sprintf "%s/%d" n a))

(* Property: on random acyclic graphs, tabled reachability agrees with a
   direct OCaml reachability computation. *)
let prop_reachability =
  QCheck2.Test.make ~name:"tabled path = OCaml reachability" ~count:40
    QCheck2.Gen.(
      list_size (int_range 0 30) (pair (int_range 0 7) (int_range 0 7)))
    (fun edges ->
      let src =
        "path(X,Y) :- path(X,Z), edge(Z,Y). path(X,Y) :- edge(X,Y)."
        ^ String.concat ""
            (List.map (fun (a, b) -> Printf.sprintf " edge(n%d,n%d)." a b) edges)
      in
      (* direct transitive closure *)
      let reach = Hashtbl.create 64 in
      List.iter (fun (a, b) -> Hashtbl.replace reach (a, b) ()) edges;
      let changed = ref true in
      while !changed do
        changed := false;
        Hashtbl.iter
          (fun (a, b) () ->
            List.iter
              (fun (c, d) ->
                if b = c && not (Hashtbl.mem reach (a, d)) then begin
                  Hashtbl.replace reach (a, d) ();
                  changed := true
                end)
              edges)
          reach
      done;
      let expected =
        Hashtbl.fold
          (fun (a, b) () acc -> Printf.sprintf "path(n%d,n%d)" a b :: acc)
          reach []
        |> List.sort compare
      in
      match edges with
      | [] -> true
      | _ ->
          let e = engine_of src in
          let got =
            query_strings e "path(X,Y)" |> List.sort compare
          in
          got = expected)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_reachability ]

let () =
  Alcotest.run "prax_tabling"
    [
      ( "termination",
        [
          Alcotest.test_case "left recursion" `Quick test_left_recursion;
          Alcotest.test_case "right recursion agrees" `Quick
            test_right_recursion_same_answers;
          Alcotest.test_case "cyclic graph" `Quick test_cyclic_termination;
          Alcotest.test_case "answerless loop" `Quick
            test_no_answer_loop_terminates;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        ] );
      ( "tables",
        [
          Alcotest.test_case "variant call sharing" `Quick test_variant_tables;
          Alcotest.test_case "duplicate answers" `Quick
            test_duplicate_answers_filtered;
          Alcotest.test_case "call table = input modes" `Quick
            test_call_table_records_input_modes;
          Alcotest.test_case "answers_for" `Quick test_answers_for;
          Alcotest.test_case "nonground answers" `Quick test_nonground_answers;
          Alcotest.test_case "table space" `Quick test_table_space_positive;
          Alcotest.test_case "reset" `Quick test_reset_tables;
        ] );
      ( "engine",
        [
          Alcotest.test_case "agreement with SLD" `Quick test_agreement_with_sld;
          Alcotest.test_case "builtin registration" `Quick
            test_builtin_registration;
          Alcotest.test_case "nontabled predicates" `Quick
            test_nontabled_predicates;
          Alcotest.test_case "open-call strategy" `Quick
            test_open_call_strategy;
        ] );
      ("properties", qsuite);
    ]
