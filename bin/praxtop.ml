(* praxtop — an interactive top level for the tabled engine: consult
   programs, pose queries, and inspect the tables, in the spirit of an
   XSB session.

     dune exec bin/praxtop.exe [file.pl ...]

   Commands:
     ?- goal.            solve goal with the tabled engine (all answers)
     :- sld goal.        solve with plain SLD resolution (Prolog semantics)
     :- consult 'file'.  load a program file
     :- bench name.      load a corpus benchmark
     :- tables.          dump the call table
     :- analyses.        list the analysis registry
     :- analyze(name, 'file').         run a registered analysis on a file
     :- analyze(name, bench(b)).       ... on a corpus benchmark
     :- analyze(name, Input, 'k=v').   ... with configuration overrides
     :- stats.           engine statistics
     :- reset.           clear the tables
     :- listing.         predicates currently defined
     :- set_limit(timeout, '500ms').   wall-clock budget per query
     :- set_limit(steps, 100000).      derivation-step budget per query
     :- set_limit(table_bytes, N).     table-space budget per query
     :- set_limit(off).                lift all budgets
     :- limits.          show the configured budgets
     :- halt.            leave (Ctrl-D halts too; Ctrl-C aborts the
                         query in flight and returns to the prompt)
   Plain clauses typed at the prompt are asserted.

   Budgets degrade gracefully (docs/ROBUSTNESS.md): an exhausted query
   prints its answers so far plus a "partial" notice, and the session —
   including the engine's tables — stays usable. *)

open Prax

type limits = {
  timeout : float option;  (** seconds *)
  max_steps : int option;
  max_bytes : int option;
}

let no_limits = { timeout = None; max_steps = None; max_bytes = None }

type session = {
  db : Logic.Database.t;
  mutable engine : Tabling.Engine.t;
  mutable limits : limits;
}

let make_session () =
  let db = Logic.Database.create () in
  { db; engine = Tabling.Engine.create db; limits = no_limits }

(* asserting clauses invalidates completed tables: rebuild the engine *)
let refresh s = s.engine <- Tabling.Engine.create s.db

(* A fresh guard per query: the deadline is relative to the query start,
   not to when the limit was configured. *)
let fresh_guard s =
  match s.limits with
  | { timeout = None; max_steps = None; max_bytes = None } -> Guard.unlimited
  | { timeout; max_steps; max_bytes } ->
      Guard.create ?timeout ?max_steps ?max_table_bytes:max_bytes ()

let consult s src =
  (* a malformed file must not kill the session: report the diagnostic
     and keep the clauses asserted so far *)
  match Logic.Parser.parse_program src with
  | exception ((Logic.Parser.Parse_error _ | Logic.Lexer.Lex_error _) as exn)
    ->
      let d = Option.get (Logic.Diag.of_exn ~file:"<consult>" ~text:src exn) in
      Printf.printf "error: %s\n" (Logic.Diag.to_string d)
  | items ->
      let count = ref 0 in
      List.iter
        (function
          | Logic.Parser.Clause c ->
              Logic.Database.assertz s.db c;
              incr count
          | Logic.Parser.Directive _ -> ())
        items;
      refresh s;
      Printf.printf "loaded %d clauses\n" !count

let report_partial = function
  | Guard.Complete -> ()
  | Guard.Partial { reason; exhausted_entries } ->
      Printf.printf
        "partial: budget exhausted (%s); answers above are sound but %d \
         table entr%s widened to most-general\n"
        (Guard.reason_to_string reason)
        exhausted_entries
        (if exhausted_entries = 1 then "y was" else "ies were")

let show_solutions s goal =
  Tabling.Engine.set_guard s.engine (fresh_guard s);
  let n = ref 0 in
  let status =
    Tabling.Engine.run_status s.engine goal (fun subst ->
        incr n;
        print_endline
          ("  "
          ^ Logic.Pretty.term_to_string (Logic.Canon.canonical subst goal)))
  in
  Tabling.Engine.set_guard s.engine Guard.unlimited;
  if !n = 0 then print_endline "no." else Printf.printf "%d answer(s).\n" !n;
  report_partial status

let show_sld s goal =
  let sols, status =
    Logic.Sld.solutions_status ~limit:50 ~guard:(fresh_guard s) s.db goal
  in
  (match sols with
  | [] -> print_endline "no."
  | sols ->
      List.iter
        (fun subst ->
          print_endline
            ("  "
            ^ Logic.Pretty.term_to_string (Logic.Canon.canonical subst goal)))
        sols;
      Printf.printf "%d answer(s) (limit 50).\n" (List.length sols));
  match status with
  | Guard.Complete -> ()
  | Guard.Partial { reason; _ } ->
      Printf.printf
        "partial: budget exhausted (%s); enumeration stopped early\n"
        (Guard.reason_to_string reason)

let show_tables s =
  let calls = Tabling.Engine.calls s.engine in
  if calls = [] then print_endline "(no tables)"
  else
    List.iter
      (fun c -> print_endline ("  " ^ Logic.Pretty.term_to_string c))
      calls

let show_stats s =
  let st = Tabling.Engine.stats s.engine in
  Printf.printf
    "calls=%d entries=%d answers=%d duplicates=%d resumptions=%d forced=%d \
     table-bytes=%d\n"
    st.Prax_tabling.Engine.calls st.Prax_tabling.Engine.table_entries
    st.Prax_tabling.Engine.answers st.Prax_tabling.Engine.duplicates
    st.Prax_tabling.Engine.resumptions st.Prax_tabling.Engine.forced
    (Tabling.Engine.table_space_bytes s.engine);
  (* process-wide counters accumulated across every engine this session *)
  print_string (Metrics.snapshot_to_human (Metrics.snapshot ()))

let show_stats_json s =
  let g =
    Metrics.gauge ~units:"bytes" ~doc:"call/answer table space estimate"
      "engine.table_space_bytes"
  in
  Metrics.set g (Tabling.Engine.table_space_bytes s.engine);
  print_endline
    (Metrics.json_to_string
       (Metrics.stats_doc ~tool:"praxtop" ~analysis:"session" ~input:"-"
          ~extra:(Guard.budget_json_fields (fresh_guard s))
          (Metrics.snapshot ())))

let show_listing s =
  List.iter
    (fun (name, arity) ->
      Printf.printf "  %s/%d (%d clauses)\n" name arity
        (List.length (Logic.Database.clauses_of s.db (name, arity))))
    (Logic.Database.predicates s.db)

let show_limits s =
  let b = function None -> "off" | Some v -> v in
  Printf.printf "timeout=%s steps=%s table_bytes=%s\n"
    (b (Option.map (Printf.sprintf "%gs") s.limits.timeout))
    (b (Option.map string_of_int s.limits.max_steps))
    (b (Option.map string_of_int s.limits.max_bytes))

(* :- set_limit(timeout, '500ms' | Millis). / (steps, N) / (table_bytes, N)
   / set_limit(off) *)
let set_limit s (args : Logic.Term.t array) =
  let bad () =
    print_endline
      "usage: set_limit(timeout, '500ms') | set_limit(timeout, Millis) | \
       set_limit(steps, N) | set_limit(table_bytes, N) | set_limit(off)"
  in
  match args with
  | [| Logic.Term.Atom "off" |] ->
      s.limits <- no_limits;
      print_endline "limits lifted."
  | [| Logic.Term.Atom "timeout"; v |] -> (
      let parsed =
        match v with
        | Logic.Term.Atom dur -> Guard.duration_of_string dur
        | Logic.Term.Int ms when ms >= 0 -> Some (float_of_int ms /. 1e3)
        | _ -> None
      in
      match parsed with
      | Some seconds ->
          s.limits <- { s.limits with timeout = Some seconds };
          show_limits s
      | None -> bad ())
  | [| Logic.Term.Atom "steps"; Logic.Term.Int n |] when n > 0 ->
      s.limits <- { s.limits with max_steps = Some n };
      show_limits s
  | [| Logic.Term.Atom "table_bytes"; Logic.Term.Int n |] when n > 0 ->
      s.limits <- { s.limits with max_bytes = Some n };
      show_limits s
  | _ -> bad ()

(* --- the analysis registry (docs/ANALYSES.md) ----------------------------- *)

let show_analyses () =
  List.iter
    (fun (a : Analysis.t) ->
      Printf.printf "  %-11s %-13s %-9s %s\n" a.Analysis.name
        (Analysis.kind_to_string a.Analysis.kind)
        (String.concat "," a.Analysis.extensions)
        (match a.Analysis.defaults with
        | [] -> "(no configuration)"
        | d -> Analysis.config_to_string d))
    (Analysis.all ())

let bench_source_of_kind (kind : Analysis.source_kind) name =
  match kind with
  | Analysis.Logic_program ->
      Option.map
        (fun (b : Benchdata.Registry.logic_bench) -> b.source)
        (Benchdata.Registry.find_logic name)
  | Analysis.Fp_program ->
      Option.map
        (fun (b : Benchdata.Registry.fp_bench) -> b.source)
        (Benchdata.Registry.find_fp name)
  | Analysis.Cfg_program ->
      Option.map
        (fun (b : Benchdata.Registry.cfg_bench) -> b.source)
        (Benchdata.Registry.find_cfg name)

(* :- analyze(name, 'file' | bench(b) [, 'k=v,...']).  Any registered
   analysis, run under the session's budgets; failures never kill the
   session. *)
let run_analysis s (args : Logic.Term.t array) =
  let bad () =
    print_endline
      "usage: analyze(name, 'file') | analyze(name, bench(b)) | \
       analyze(name, Input, 'k=v,...')"
  in
  let go name input cfg =
    match Analysis.find name with
    | None ->
        Printf.printf "unknown analysis %s (registered: %s)\n" name
          (String.concat ", " (Analysis.names ()))
    | Some a -> (
        let source =
          match input with
          | Logic.Term.Struct ("bench", [| Logic.Term.Atom b |], _) -> (
              match bench_source_of_kind a.Analysis.kind b with
              | Some src -> Some src
              | None ->
                  Printf.printf "unknown %s benchmark %s\n"
                    (Analysis.kind_to_string a.Analysis.kind)
                    b;
                  None)
          | Logic.Term.Atom path -> (
              match In_channel.with_open_text path In_channel.input_all with
              | src -> Some src
              | exception Sys_error m ->
                  Printf.printf "cannot read %s: %s\n" path m;
                  None)
          | _ ->
              bad ();
              None
        in
        match source with
        | None -> ()
        | Some src -> (
            match Analysis.assignments_of_string cfg with
            | Error msg -> Printf.printf "error: %s\n" msg
            | Ok config -> (
                match Analysis.run a ~config ~guard:(fresh_guard s) src with
                | rep ->
                    print_endline rep.Analysis.payload_text;
                    print_endline (Analysis.timings_line rep);
                    report_partial rep.Analysis.status
                | exception Analysis.Config_error msg ->
                    Printf.printf "error: %s\n" msg)))
  in
  match args with
  | [| Logic.Term.Atom name; input |] -> go name input ""
  | [| Logic.Term.Atom name; input; Logic.Term.Atom cfg |] -> go name input cfg
  | _ -> bad ()

exception Quit

let handle_directive s (d : Logic.Term.t) =
  match d with
  | Logic.Term.Atom "halt" -> raise Quit
  | Logic.Term.Atom "analyses" -> show_analyses ()
  | Logic.Term.Struct ("analyze", args, _) -> run_analysis s args
  | Logic.Term.Atom "tables" -> show_tables s
  | Logic.Term.Atom "stats" -> show_stats s
  | Logic.Term.Struct ("stats", [| Logic.Term.Atom "json" |], _) ->
      show_stats_json s
  | Logic.Term.Atom "listing" -> show_listing s
  | Logic.Term.Atom "limits" -> show_limits s
  | Logic.Term.Struct ("set_limit", args, _) -> set_limit s args
  | Logic.Term.Atom "reset" ->
      refresh s;
      print_endline "tables cleared."
  | Logic.Term.Struct ("sld", [| g |], _) -> show_sld s g
  | Logic.Term.Struct ("consult", [| Logic.Term.Atom path |], _) -> (
      match In_channel.with_open_text path In_channel.input_all with
      | src -> consult s src
      | exception Sys_error m -> Printf.printf "cannot read %s: %s\n" path m)
  | Logic.Term.Struct ("bench", [| Logic.Term.Atom name |], _) -> (
      match Benchdata.Registry.find_logic name with
      | Some b -> consult s b.Benchdata.Registry.source
      | None -> Printf.printf "unknown benchmark %s\n" name)
  | Logic.Term.Struct (("assert" | "assertz"), [| t |], _) ->
      (match Logic.Parser.clause_of_term t with
      | Logic.Parser.Clause c ->
          Logic.Database.assertz s.db c;
          refresh s;
          print_endline "asserted."
      | Logic.Parser.Directive _ -> print_endline "cannot assert a directive")
  | g -> show_solutions s g

let handle_line s line =
  let line = String.trim line in
  if line = "" then ()
  else
    match Logic.Parser.parse_program line with
    | items ->
        List.iter
          (function
            | Logic.Parser.Directive d -> handle_directive s d
            | Logic.Parser.Clause { Logic.Parser.head; body = [] } ->
                (* a bare term at the prompt is a query, as in XSB;
                   use :- assert(fact). to add facts *)
                show_solutions s head
            | Logic.Parser.Clause c ->
                (* a rule typed at the prompt is asserted *)
                Logic.Database.assertz s.db c;
                refresh s;
                print_endline "asserted.")
          items
    | exception Logic.Parser.Parse_error m -> Printf.printf "syntax error: %s\n" m
    | exception Logic.Lexer.Lex_error (m, pos) ->
        Printf.printf "lexical error at %d: %s\n" pos m

let () =
  (* force the shipped analyses into the registry before any lookup *)
  Analyses.ensure ();
  let s = make_session () in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match In_channel.with_open_text arg In_channel.input_all with
        | src -> consult s src
        | exception Sys_error m -> Printf.printf "cannot read %s: %s\n" arg m)
    Sys.argv;
  print_endline
    "praxtop - tabled logic programming top level  (:- halt. to leave)";
  (* SIGINT becomes Sys.Break: Ctrl-C aborts the query in flight and
     returns to the prompt instead of killing the session *)
  Sys.catch_break true;
  (try
     while true do
       print_string "?- ";
       match In_channel.input_line stdin with
       | None ->
           (* EOF (Ctrl-D): halt as cleanly as :- halt. — the newline
              keeps "bye." off the prompt line *)
           print_newline ();
           raise Quit
       | exception Sys.Break ->
           (* Ctrl-C at the prompt itself: fresh prompt *)
           print_newline ()
       | Some line -> (
           (* nothing a line does may kill the session: known engine
              errors get tailored messages; anything else falls through
              to a generic report.  After any of these the engine's
              tables have been restored to a consistent state by
              [Engine.run_status]'s recovery path. *)
           try handle_line s line
           with
           | Quit -> raise Quit
           | Sys.Break ->
               (* the tables were restored by the engine's abort
                  recovery before the exception reached us *)
               print_endline "interrupted."
           | Prax_logic.Sld.Existence_error (n, a) ->
               Printf.printf "undefined predicate %s/%d\n" n a
           | Prax_logic.Sld.Instantiation_error w ->
               Printf.printf "arguments insufficiently instantiated (%s)\n" w
           | Prax_logic.Sld.Type_error (k, t) ->
               Printf.printf "type error: expected %s in %s\n" k
                 (Logic.Pretty.term_to_string t)
           | Tabling.Engine.Not_definite t ->
               Printf.printf "not a definite goal: %s\n"
                 (Logic.Pretty.term_to_string t)
           | Stack_overflow -> print_endline "error: stack overflow"
           | exn -> Printf.printf "error: %s\n" (Printexc.to_string exn))
     done
   with Quit -> print_endline "bye.")
