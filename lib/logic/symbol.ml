(** Global string interning with an inverse table (see symbol.mli).

    The forward direction is a plain [Hashtbl] keyed by the name; the
    inverse is a growable array indexed by id.  Entries are never
    removed: analysis workloads draw functor names from the program
    text, a small finite set, so the table stays tiny and append-only
    keeps every lookup lock-free and allocation-free. *)

module Metrics = Prax_metrics.Metrics

let m_symbols =
  Metrics.counter ~units:"symbols"
    ~doc:"distinct functor/atom names interned in the global symbol table"
    "intern.symbols"

type t = int

type entry = { ename : string; ehash : int }

let forward : (string, int) Hashtbl.t = Hashtbl.create 256

let inverse : entry array ref = ref (Array.make 256 { ename = ""; ehash = 0 })

let next = ref 0

let intern (s : string) : t =
  match Hashtbl.find_opt forward s with
  | Some id -> id
  | None ->
      let id = !next in
      incr next;
      Metrics.incr m_symbols;
      let cap = Array.length !inverse in
      if id >= cap then begin
        let bigger = Array.make (2 * cap) { ename = ""; ehash = 0 } in
        Array.blit !inverse 0 bigger 0 cap;
        inverse := bigger
      end;
      !inverse.(id) <- { ename = s; ehash = Hashtbl.hash s };
      Hashtbl.add forward s id;
      id

let name (id : t) : string =
  if id < 0 || id >= !next then invalid_arg "Symbol.name: unknown id"
  else !inverse.(id).ename

let hash (id : t) : int =
  if id < 0 || id >= !next then invalid_arg "Symbol.hash: unknown id"
  else !inverse.(id).ehash

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare (a : int) b
let count () = !next
let mem s = Hashtbl.mem forward s
