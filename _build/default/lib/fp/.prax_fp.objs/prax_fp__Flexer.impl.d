lib/fp/flexer.ml: List Printf String
