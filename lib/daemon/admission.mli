(** Admission control: per-client token buckets.

    The daemon's first line of defense (docs/ROBUSTNESS.md "serving
    under load"): before a request touches the queue or the fleet, its
    client must hold a token.  A bucket refills continuously at [rate]
    tokens per second up to a [burst] ceiling, so steady traffic at or
    under [rate] never waits while a burst larger than [burst] is shed
    with ["overloaded"/"rate_limited"].

    Time is an explicit parameter, never read from the clock, so refill
    behavior is deterministic under test. *)

type t

val create : rate:float -> burst:float -> t
(** [rate ≤ 0] disables limiting: every {!admit} succeeds.
    [burst] is clamped to at least [1.0] token. *)

val admit : t -> client:string -> now:float -> bool
(** Refill [client]'s bucket to [min burst (tokens + (now - last) *
    rate)], then take one token if available.  First sight of a client
    starts it at a full burst.  [now] is any monotone seconds clock;
    going backwards refills nothing (never raises). *)

val tokens : t -> client:string -> now:float -> float
(** The tokens [client] would hold at [now], without taking any —
    observability and tests. *)

val retry_after : t -> client:string -> now:float -> float
(** Seconds until [client]'s bucket holds one token at the configured
    refill rate (0 when a token is available now, or when limiting is
    disabled).  The [retry_after_ms] hint on rate-limit sheds: a client
    that waits this long retries into an admitting bucket instead of
    hammering. *)

val clients : t -> int
(** Distinct clients tracked so far. *)
