(** Blocking prax.wire client — see client.mli. *)

module Metrics = Prax_metrics.Metrics

type error = Connect_failed of string | Protocol_error of string

let error_to_string = function
  | Connect_failed msg -> "cannot reach daemon: " ^ msg
  | Protocol_error msg -> "protocol error: " ^ msg

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

(* Buffered line reader over a socket.  A kernel read can span the end
   of one response and the start of the next (batch mode streams many
   lines down one connection), so bytes past the first newline must be
   kept for the next call, never dropped. *)
type reader = { r_fd : Unix.file_descr; mutable r_pending : string }

let reader_of_fd fd = { r_fd = fd; r_pending = "" }

(* read up to (and including) the first newline; [deadline] is an
   absolute gettimeofday time, or none.  A reply longer than
   [max_response_bytes] is a protocol violation (a healthy server
   frames responses in one bounded line), never a result. *)
let read_line_r ?deadline ?max_response_bytes r =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let oversized = ref false in
  let complete = ref false in
  (* consume [s] up to the first newline; the rest waits in r_pending *)
  let feed s =
    (match String.index_opt s '\n' with
    | Some i ->
        Buffer.add_string buf (String.sub s 0 (i + 1));
        r.r_pending <- String.sub s (i + 1) (String.length s - i - 1);
        complete := true
    | None ->
        Buffer.add_string buf s;
        r.r_pending <- "");
    match max_response_bytes with
    | Some cap when Buffer.length buf > cap ->
        oversized := true;
        raise Exit
    | _ -> ()
  in
  let rec loop () =
    if !complete then Ok (String.trim (Buffer.contents buf))
    else begin
      (match deadline with
      | None -> ()
      | Some d ->
          let left = d -. Unix.gettimeofday () in
          if left <= 0. then raise Exit;
          ignore (Unix.select [ r.r_fd ] [] [] left));
      match Unix.read r.r_fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          if Buffer.length buf = 0 then
            Error (Protocol_error "connection closed before response")
          else
            Error (Protocol_error "connection closed mid-response (truncated)")
      | n ->
          feed (Bytes.sub_string chunk 0 n);
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (e, _, _) ->
          Error (Protocol_error (Unix.error_message e))
    end
  in
  try
    (let s = r.r_pending in
     r.r_pending <- "";
     if s <> "" then feed s);
    loop ()
  with Exit ->
    if !oversized then
      Error
        (Protocol_error
           (Printf.sprintf "oversized response (over %d bytes)"
              (Option.value max_response_bytes ~default:0)))
    else Error (Protocol_error "timed out awaiting response")

let read_line_fd ?deadline ?max_response_bytes fd =
  read_line_r ?deadline ?max_response_bytes (reader_of_fd fd)

let parse_response line : (string * Metrics.json, error) result =
  match Metrics.json_of_string line with
  | exception _ -> Error (Protocol_error "response is not JSON")
  | j -> (
      match Wire.response_status j with
      | Ok status -> Ok (status, j)
      | Error msg -> Error (Protocol_error msg))

let request ?timeout ?max_response_bytes ~socket (req : Wire.request) :
    (string * Metrics.json, error) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Connect_failed (socket ^ ": " ^ Unix.error_message e))
      | () -> (
          let line = Wire.request_to_string req ^ "\n" in
          match write_all fd line 0 (String.length line) with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Connect_failed (Unix.error_message e))
          | () -> (
              let deadline =
                Option.map (fun t -> Unix.gettimeofday () +. t) timeout
              in
              match read_line_fd ?deadline ?max_response_bytes fd with
              | Error _ as e -> e
              | Ok line -> parse_response line)))

(* --- retrying wrapper ----------------------------------------------------- *)

(* Deterministic jitter in [0,1): hash-derived, so the same (key,
   attempt) always backs off identically — replayable tests — while
   distinct clients spread out instead of herding. *)
let jitter_unit ~key ~attempt =
  float_of_int (Hashtbl.hash (key, attempt, "client-jitter") land 0xffff)
  /. 65536.

let backoff_delay ~key ~attempt ~base ~cap ~retry_after_ms =
  let attempt = max 1 attempt in
  let base = Float.max 0.001 base in
  let cap = Float.max base cap in
  let expo = Float.min cap (base *. (2. ** float_of_int (attempt - 1))) in
  (* ±25% jitter around the exponential step *)
  let jittered = expo *. (0.75 +. (0.5 *. jitter_unit ~key ~attempt)) in
  let floor_s =
    match retry_after_ms with
    | Some ms when ms > 0 -> float_of_int ms /. 1000.
    | _ -> 0.
  in
  Float.min cap (Float.max floor_s jittered)

let retryable_status = function "overloaded" -> true | _ -> false

let request_with_retries ?timeout ?max_response_bytes
    ?(sleep = Unix.sleepf) ?(base = 0.2) ?(cap = 10.) ~socket ~retries
    (req : Wire.request) : (string * Metrics.json * int, error) result =
  let retries = max 0 retries in
  let key = Wire.request_to_string req in
  let rec go attempt =
    let result = request ?timeout ?max_response_bytes ~socket req in
    let retry retry_after_ms =
      sleep (backoff_delay ~key ~attempt ~base ~cap ~retry_after_ms);
      go (attempt + 1)
    in
    match result with
    | Ok (status, j) when retryable_status status && attempt <= retries ->
        retry (Wire.retry_after_ms j)
    | Ok (status, j) -> Ok (status, j, attempt)
    | Error (Connect_failed _) when attempt <= retries -> retry None
    | Error _ as e -> e
  in
  match go 1 with
  | Ok _ as ok -> ok
  | Error e -> Error e

(* --- batch: a corpus through one connection -------------------------------- *)

type batch_job = { job_input : string; job_req : Wire.request }

type batch_outcome = {
  b_input : string;
  b_status : string;  (** final wire status, or ["protocol_error"] *)
  b_json : Metrics.json;  (** [Null] when no valid response arrived *)
  b_attempts : int;
}

(* One round: send every pending request down [r]'s connection (ids
   rewritten to the job index), then read responses until all are
   answered or the stream dies.  Returns the indexes still unanswered
   (stream died). *)
let batch_round ?timeout ?max_response_bytes r (jobs : batch_job array)
    (outcomes : batch_outcome option array) (attempts : int array)
    (retry_floor : int option array) (pending : int list) :
    (int list, error) result =
  let unanswered = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace unanswered i ()) pending;
  match
    List.iter
      (fun i ->
        attempts.(i) <- attempts.(i) + 1;
        let req = { jobs.(i).job_req with Wire.id = Metrics.Int i } in
        let line = Wire.request_to_string req ^ "\n" in
        write_all r.r_fd line 0 (String.length line))
      pending
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Connect_failed (Unix.error_message e))
  | () ->
      let record i status j =
        if retryable_status status then
          retry_floor.(i) <- Wire.retry_after_ms j
        else
          outcomes.(i) <-
            Some
              {
                b_input = jobs.(i).job_input;
                b_status = status;
                b_json = j;
                b_attempts = attempts.(i);
              };
        Hashtbl.remove unanswered i
      in
      let rec read_loop () =
        if Hashtbl.length unanswered = 0 then Ok []
        else
          let deadline =
            Option.map (fun t -> Unix.gettimeofday () +. t) timeout
          in
          match read_line_r ?deadline ?max_response_bytes r with
          | Error _ as e -> e
          | Ok line -> (
              match parse_response line with
              | Error _ as e -> e
              | Ok (status, j) -> (
                  match Metrics.member "id" j with
                  | Some (Metrics.Int i)
                    when i >= 0 && i < Array.length jobs
                         && Hashtbl.mem unanswered i ->
                      record i status j;
                      read_loop ()
                  | _ ->
                      (* an id we can't place poisons the stream: we no
                         longer know which job any byte belongs to *)
                      Error (Protocol_error "response with unknown id")))
      in
      match read_loop () with
      | Ok [] -> Ok []
      | Ok _ as ok -> ok
      | Error e ->
          (* the stream died mid-round: surviving jobs go to the next
             round (their attempt is already spent); remember why in
             case retries run out *)
          let left =
            Hashtbl.fold (fun i () acc -> i :: acc) unanswered []
            |> List.sort compare
          in
          List.iter
            (fun i ->
              if attempts.(i) > 0 then
                outcomes.(i) <-
                  Some
                    {
                      b_input = jobs.(i).job_input;
                      b_status = "protocol_error";
                      b_json = Metrics.Str (error_to_string e);
                      b_attempts = attempts.(i);
                    })
            left;
          Ok left

let batch ?timeout ?max_response_bytes ?(sleep = Unix.sleepf) ?(base = 0.2)
    ?(cap = 10.) ~socket ~retries (jobs : batch_job array) :
    (batch_outcome array, error) result =
  let n = Array.length jobs in
  let retries = max 0 retries in
  let outcomes : batch_outcome option array = Array.make n None in
  let attempts = Array.make n 0 in
  let retry_floor : int option array = Array.make n None in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Connect_failed (socket ^ ": " ^ Unix.error_message e))
  in
  let pending i =
    attempts.(i) <= retries
    && match outcomes.(i) with
       | None -> true
       | Some o -> retryable_status o.b_status || o.b_status = "protocol_error"
  in
  let rec rounds ~round first_error =
    let todo = List.filter pending (List.init n Fun.id) in
    if todo = [] then Ok ()
    else if round > retries then Ok ()
    else begin
      (if round > 0 then
         (* back off before re-dialing: respect the largest
            retry_after_ms hint collected this round *)
         let floor_ms =
           List.fold_left
             (fun acc i ->
               match retry_floor.(i) with
               | Some ms -> max acc ms
               | None -> acc)
             0 todo
         in
         sleep
           (backoff_delay ~key:socket ~attempt:round ~base ~cap
              ~retry_after_ms:(if floor_ms > 0 then Some floor_ms else None)));
      List.iter (fun i -> retry_floor.(i) <- None) todo;
      match connect () with
      | Error e ->
          if round >= retries then
            match first_error with
            | Some e0 -> Error e0
            | None -> Error e
          else rounds ~round:(round + 1) (Some (Option.value first_error ~default:e))
      | Ok fd ->
          let result =
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                batch_round ?timeout ?max_response_bytes (reader_of_fd fd)
                  jobs outcomes attempts retry_floor todo)
          in
          (match result with
          | Error e -> Error e
          | Ok _left -> rounds ~round:(round + 1) first_error)
    end
  in
  match rounds ~round:0 None with
  | Error e -> Error e
  | Ok () ->
      Ok
        (Array.mapi
           (fun i o ->
             match o with
             | Some o -> o
             | None ->
                 {
                   b_input = jobs.(i).job_input;
                   b_status =
                     (if attempts.(i) = 0 then "unanswered" else "overloaded");
                   b_json = Metrics.Null;
                   b_attempts = attempts.(i);
                 })
           outcomes)
