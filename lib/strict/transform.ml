(** The strictness formulation of Figure 3: translate a functional
    program into a logic program over the demand domain {e,d,n}.

    For each function [f/n] we derive [sp_f/(n+1)]: [sp_f(D, X1…Xn)]
    holds when an application of [f] whose result is demanded to extent
    [D] may propagate demands [Xi] to its arguments.  Demand flows
    top-down through right-hand sides (function/constructor application)
    and bottom-up through left-hand-side patterns (the [pm_c] relations),
    and the generated literal order encodes exactly that flow — the
    paper's key efficiency observation.

    Base relations, generated as (enumerative) facts:
    - [spc_c]: demand propagation through constructor application
      ([e] forces components to [e]; [d]/[n] force nothing);
    - [pm_c]: demand on a matched argument given component demands
      ([e] iff all components [e]; [d] otherwise);
    - [spstrict1]/[spstrict2]: flat strict primitives;
    - [sp_if]: condition always demanded, branches alternatively;
    - [dlub]: join of demands for variables used more than once. *)

open Prax_logic
open Prax_fp

let sanitize = function ":" -> "cons" | "[]" -> "nil" | c -> c

let sp_name f = "sp_" ^ f
let spc_name c = "spc_" ^ sanitize c
let pm_name c = "pm_" ^ sanitize c

let e_ = Term.atom "e"
let d_ = Term.atom "d"
let n_ = Term.atom "n"

(* occurrence environment: innermost binding first (handles shadowing) *)
type scope = (string * Term.t list ref) list

let record_occurrence (sc : scope) x demand =
  match List.assoc_opt x sc with
  | Some cell -> cell := demand :: !cell
  | None -> ()  (* checked programs cannot reach this *)

(* Combine the demands of all occurrences of a variable: no occurrence →
   an unconstrained fresh variable (no demand); one → itself; several →
   dlub-chained join. *)
let combine_occurrences (occs : Term.t list) (extra : Term.t list ref) :
    Term.t =
  match occs with
  | [] -> Term.fresh_var ()
  | [ d ] -> d
  | d :: rest ->
      List.fold_left
        (fun acc d' ->
          let z = Term.fresh_var () in
          extra := Term.mkl "dlub" [ acc; d'; z ] :: !extra;
          z)
        d rest

let rec trans_expr (sc : scope) (e : Ast.expr) (demand : Term.t) :
    Term.t list =
  match e with
  | Ast.Int _ -> []
  | Ast.Var x ->
      record_occurrence sc x demand;
      []
  | Ast.Con (c, es) ->
      let alphas = List.map (fun _ -> Term.fresh_var ()) es in
      Term.mkl (spc_name c) (demand :: alphas)
      :: List.concat (List.map2 (trans_expr sc) es alphas)
  | Ast.App (f, es) ->
      let alphas = List.map (fun _ -> Term.fresh_var ()) es in
      Term.mkl (sp_name f) (demand :: alphas)
      :: List.concat (List.map2 (trans_expr sc) es alphas)
  | Ast.Prim (_, es) ->
      let alphas = List.map (fun _ -> Term.fresh_var ()) es in
      let lit =
        match alphas with
        | [ a ] -> Term.mkl "spstrict1" [ demand; a ]
        | [ a; b ] -> Term.mkl "spstrict2" [ demand; a; b ]
        | _ -> invalid_arg "Transform: primitive arity"
      in
      lit :: List.concat (List.map2 (trans_expr sc) es alphas)
  | Ast.If (c, t, el) ->
      let ac = Term.fresh_var ()
      and at = Term.fresh_var ()
      and ae = Term.fresh_var () in
      (Term.mkl "sp_if" [ demand; ac; at; ae ] :: trans_expr sc c ac)
      @ trans_expr sc t at @ trans_expr sc el ae
  | Ast.Let (x, e1, e2) ->
      let cell = ref [] in
      let lits2 = trans_expr ((x, cell) :: sc) e2 demand in
      if !cell = [] then lits2 (* binding never demanded: e1 unevaluated *)
      else begin
        let extra = ref [] in
        let dx = combine_occurrences (List.rev !cell) extra in
        lits2 @ List.rev !extra @ trans_expr sc e1 dx
      end

(* bottom-up pattern translation: returns the demand term for the whole
   pattern plus the literals computing it *)
let rec trans_pat (sc : scope) (p : Ast.pat) : Term.t * Term.t list =
  match p with
  | Ast.PVar x ->
      (* occurrence cells are built by prepending: reverse to fold joins
         in first-occurrence order, so the dlub chain becomes schedulable
         as soon as each occurrence's producer has run *)
      let occs =
        match List.assoc_opt x sc with Some c -> List.rev !c | None -> []
      in
      let extra = ref [] in
      let d = combine_occurrences occs extra in
      (d, List.rev !extra)
  | Ast.PInt _ -> (e_, [])  (* matching a literal fully evaluates it *)
  | Ast.PCon (c, ps) ->
      let subs = List.map (trans_pat sc) ps in
      let betas = List.map fst subs in
      let lits = List.concat_map snd subs in
      let x = Term.fresh_var () in
      (x, lits @ [ Term.mkl (pm_name c) (x :: betas) ])

(* Liveness-minimizing literal scheduling.  The body's literal order does
   not affect the minimal model, so we are free to pull the "reducer"
   literals — dlub joins and pm pattern relations — to the earliest point
   where their input demand variables have been produced.  This keeps the
   live-variable sets of the supplementary-tabling chain small, which is
   what keeps intermediate tables small on equations with many shared
   variables (strassen, event). *)
let schedule (lits : Term.t list) : Term.t list =
  let inputs lit =
    match lit with
    | Term.Struct ("dlub", [| a; b; _ |], _) -> Term.vars a @ Term.vars b
    | Term.Struct (name, args, _)
      when String.length name > 3 && String.equal (String.sub name 0 3) "pm_"
      ->
        (* arg 0 is the output; components are inputs *)
        Array.to_list args |> List.tl |> List.concat_map Term.vars
    | _ -> []
  in
  let is_reducer lit =
    match lit with
    | Term.Struct ("dlub", _, _) -> true
    | Term.Struct (name, _, _) ->
        String.length name > 3 && String.equal (String.sub name 0 3) "pm_"
    | _ -> false
  in
  let seen = Hashtbl.create 16 in
  let see lit = List.iter (fun v -> Hashtbl.replace seen v ()) (Term.vars lit) in
  let ready lit = List.for_all (Hashtbl.mem seen) (inputs lit) in
  let rec drain pending acc =
    match List.partition (fun l -> is_reducer l && ready l) pending with
    | [], _ -> (pending, acc)
    | fire, rest ->
        List.iter see fire;
        drain rest (List.rev_append fire acc)
  in
  let rec go pending acc =
    match pending with
    | [] -> List.rev acc
    | _ -> (
        let pending, acc = drain pending acc in
        match pending with
        | [] -> List.rev acc
        | l :: rest ->
            see l;
            go rest (l :: acc))
  in
  go lits []

let trans_equation (eq : Ast.equation) : Parser.clause =
  (* one occurrence cell per pattern variable *)
  let pat_vars = List.fold_left Ast.pat_vars [] eq.Ast.pats in
  let sc : scope = List.map (fun v -> (v, ref [])) pat_vars in
  let d = Term.fresh_var () in
  let rhs_lits = trans_expr sc eq.Ast.rhs d in
  let pat_results = List.map (trans_pat sc) eq.Ast.pats in
  let xs = List.map fst pat_results in
  let pat_lits = List.concat_map snd pat_results in
  {
    Parser.head = Term.mkl (sp_name eq.Ast.fname) (d :: xs);
    body = schedule (rhs_lits @ pat_lits);
  }

(* --- base relations ------------------------------------------------------ *)

let fact head = { Parser.head; body = [] }

let fresh_list k = List.init k (fun _ -> Term.fresh_var ())

(* all tuples over {e,d,n}^k *)
let rec edn_tuples k =
  if k = 0 then [ [] ]
  else
    let rest = edn_tuples (k - 1) in
    List.concat_map (fun t -> [ e_ :: t; d_ :: t; n_ :: t ]) rest

let constructor_facts (c, k) : Parser.clause list =
  let all_e = List.init k (fun _ -> e_) in
  let spc =
    [
      fact (Term.mkl (spc_name c) (e_ :: all_e));
      fact (Term.mkl (spc_name c) (d_ :: fresh_list k));
      fact (Term.mkl (spc_name c) (n_ :: fresh_list k));
    ]
  in
  let pm_e = fact (Term.mkl (pm_name c) (e_ :: all_e)) in
  let pm_d =
    edn_tuples k
    |> List.filter (fun t -> not (List.for_all (Term.equal e_) t))
    |> List.map (fun t -> fact (Term.mkl (pm_name c) (d_ :: t)))
  in
  spc @ (pm_e :: pm_d)

let base_facts (constructors : (string * int) list) : Parser.clause list =
  let prim_facts =
    [
      fact (Term.mkl "spstrict1" [ e_; e_ ]);
      fact (Term.mkl "spstrict1" [ d_; e_ ]);
      fact (Term.mkl "spstrict1" (n_ :: fresh_list 1));
      fact (Term.mkl "spstrict2" [ e_; e_; e_ ]);
      fact (Term.mkl "spstrict2" [ d_; e_; e_ ]);
      fact (Term.mkl "spstrict2" (n_ :: fresh_list 2));
      fact (Term.mkl "sp_if" [ e_; e_; e_; Term.fresh_var () ]);
      fact (Term.mkl "sp_if" [ e_; e_; Term.fresh_var (); e_ ]);
      fact (Term.mkl "sp_if" [ d_; e_; d_; Term.fresh_var () ]);
      fact (Term.mkl "sp_if" [ d_; e_; Term.fresh_var (); d_ ]);
      fact (Term.mkl "sp_if" (n_ :: fresh_list 3));
    ]
  in
  let dlub_facts =
    let atoms = [ Demand.E; Demand.D; Demand.N ] in
    List.concat_map
      (fun a ->
        List.map
          (fun b ->
            fact
              (Term.mkl "dlub"
                 [
                   Demand.to_atom a;
                   Demand.to_atom b;
                   Demand.to_atom (Demand.lub a b);
                 ]))
          atoms)
      atoms
  in
  prim_facts @ dlub_facts @ List.concat_map constructor_facts constructors

(** Translate a checked program: the derived [sp_f] clauses (including
    the non-strictness clause [sp_f(n, _…)] per function) plus all base
    relations. *)
let program (p : Ast.program) : Parser.clause list =
  let derived = List.map trans_equation p in
  let nonstrict =
    List.map
      (fun (f, arity) ->
        fact (Term.mkl (sp_name f) (n_ :: fresh_list arity)))
      (Ast.functions p)
  in
  derived @ nonstrict @ base_facts (Ast.constructors p)
