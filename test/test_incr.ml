(* Incremental re-analysis (docs/INCREMENTAL.md): the dependency graph
   and its closure digests invalidate exactly the dependent cone, the
   fragment codec round-trips and degrades corrupt payloads to misses,
   spliced tables are byte-identical to from-scratch ones, and — the
   oracle the whole feature hangs on — a deterministic mutation sweep
   over the full corpus asserting the incremental report equals the
   from-scratch report after every edit. *)

open Prax_logic
module Engine = Prax_tabling.Engine
module Guard = Prax_guard.Guard
module Analysis = Prax_analysis.Analysis
module Metrics = Prax_metrics.Metrics
module Store = Prax_store.Store
module Depgraph = Prax_incr.Depgraph
module Incr = Prax_incr.Incr
module Mutate = Prax_incr.Mutate
module Registry = Prax_benchdata.Registry

let () = Prax_analyses.Analyses.ensure ()
let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* first-occurrence textual replacement (avoids a Str dependency) *)
let replace ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "replace: %S not found" sub
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let analysis name =
  match Analysis.find name with
  | Some a -> a
  | None -> Alcotest.failf "analysis %s not registered" name

let logic_src name =
  match Registry.find_logic name with
  | Some b -> b.Registry.source
  | None -> Alcotest.failf "no logic benchmark %s" name

(* --- dependency graph ---------------------------------------------------- *)

(* A five-SCC program: {p,q} mutual, r a fact, s over r, t over s and
   the *undefined* u — undefined-but-called predicates must be graph
   nodes, or gaining clauses later would not invalidate their callers. *)
let diamond =
  "p(X) :- q(X), r(X).\n\
   q(X) :- p(X).\n\
   q(a).\n\
   r(a).\n\
   s(X) :- r(X).\n\
   t(X) :- s(X), u(X).\n"

let graph src = Depgraph.build (Parser.parse_clauses src)

let scc g p =
  match Depgraph.scc_of g p with
  | Some i -> i
  | None -> Alcotest.failf "%s/%d has no SCC" (fst p) (snd p)

let test_condensation () =
  let g = graph diamond in
  check_i "five SCCs" 5 (Depgraph.scc_count g);
  check_i "p and q share an SCC" (scc g ("p", 1)) (scc g ("q", 1));
  check_b "undefined u is a node" true
    (List.mem ("u", 1) (Depgraph.preds g));
  Alcotest.(check (list (pair string int)))
    "members sorted"
    [ ("p", 1); ("q", 1) ]
    (Depgraph.members g (scc g ("p", 1)));
  (* reverse topological ids: callees first *)
  check_b "callee r below caller {p,q}" true (scc g ("r", 1) < scc g ("p", 1));
  check_b "callee r below caller s" true (scc g ("r", 1) < scc g ("s", 1));
  check_b "callee s below caller t" true (scc g ("s", 1) < scc g ("t", 1));
  check_b "callee u below caller t" true (scc g ("u", 1) < scc g ("t", 1));
  Alcotest.(check (list int))
    "condensation successors of t, sorted, no self"
    (List.sort compare [ scc g ("s", 1); scc g ("u", 1) ])
    (Depgraph.succs g (scc g ("t", 1)));
  check_i "t has two clauses? no — one" 1
    (List.length (Depgraph.clauses_of g ("t", 1)));
  check_i "undefined u has no clauses" 0
    (List.length (Depgraph.clauses_of g ("u", 1)))

let test_cone () =
  let g = graph diamond in
  (* everything that can reach r: {p,q}, r itself, s, t — not u *)
  Alcotest.(check (list int))
    "cone of an edit to r"
    (List.sort compare
       [ scc g ("r", 1); scc g ("p", 1); scc g ("s", 1); scc g ("t", 1) ])
    (Depgraph.dependent_cone g [ ("r", 1) ]);
  Alcotest.(check (list int))
    "cone of the undefined u is u and its caller"
    (List.sort compare [ scc g ("u", 1); scc g ("t", 1) ])
    (Depgraph.dependent_cone g [ ("u", 1) ]);
  Alcotest.(check (list int))
    "cone of the top SCC is itself"
    [ scc g ("t", 1) ]
    (Depgraph.dependent_cone g [ ("t", 1) ])

(* Digests are a pure function of the canonical clause text, and the set
   of SCCs whose closure digest changes under an edit is exactly the
   dependent cone — the soundness condition for cache invalidation. *)
let test_digests () =
  let g1 = graph diamond and g2 = graph diamond in
  List.iter
    (fun p ->
      check_s
        (Printf.sprintf "digest of %s/%d stable across builds" (fst p) (snd p))
        (Depgraph.pred_digest g1 p) (Depgraph.pred_digest g2 p))
    (Depgraph.preds g1);
  (* variable names do not matter: the rendering is canonical *)
  let g_renamed =
    graph (String.concat "Zz" (String.split_on_char 'X' diamond))
  in
  check_s "alpha-renaming preserves digests"
    (Depgraph.pred_digest g1 ("p", 1))
    (Depgraph.pred_digest g_renamed ("p", 1));
  (* edit r's fact; the graph shape is unchanged, so SCC ids align *)
  let g3 =
    graph (replace ~sub:"r(a)." ~by:"r(b)." diamond)
  in
  check_b "edited predicate digest changes" true
    (Depgraph.pred_digest g1 ("r", 1) <> Depgraph.pred_digest g3 ("r", 1));
  check_s "unrelated predicate digest unchanged"
    (Depgraph.pred_digest g1 ("t", 1))
    (Depgraph.pred_digest g3 ("t", 1));
  let cone = Depgraph.dependent_cone g1 [ ("r", 1) ] in
  List.iter
    (fun p ->
      let changed =
        Depgraph.closure_digest g1 (scc g1 p)
        <> Depgraph.closure_digest g3 (scc g3 p)
      in
      check_b
        (Printf.sprintf "closure digest of %s/%d changed iff in cone" (fst p)
           (snd p))
        (List.mem (scc g1 p) cone)
        changed)
    (Depgraph.preds g1)

(* --- fragment codec ------------------------------------------------------ *)

(* Capture the payloads a real run persists: every one must decode, and
   re-encoding must reproduce the payload byte-for-byte (the codec is a
   fixpoint of its own round-trip, same property as dump_tables). *)
let recording_cache () =
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let saved = ref [] in
  ( {
      Analysis.cache_load = (fun k -> Hashtbl.find_opt tbl k);
      cache_save =
        (fun k v ->
          saved := (k, v) :: !saved;
          Hashtbl.replace tbl k v);
    },
    saved )

let test_codec_roundtrip () =
  let a = analysis "groundness" in
  let cache, saved = recording_cache () in
  ignore (Analysis.run_incr a ~cache (logic_src "qsort"));
  check_b "a fresh run persists fragments" true (!saved <> []);
  List.iter
    (fun (k, payload) ->
      match Incr.fragment_of_string payload with
      | None -> Alcotest.failf "persisted fragment %s does not decode" k
      | Some records ->
          check_b "fragments are non-empty" true (records <> []);
          check_s
            (Printf.sprintf "fragment %s re-encodes byte-identically" k)
            payload
            (Incr.fragment_to_string records))
    !saved

let test_codec_corruption () =
  (* gp_p(true) / gp_q(V0) in the preorder length-prefixed encoding;
     the answer is a back-reference to node 1 (postorder: true=0,
     gp_p(true)=1), exactly as the sharing encoder would emit it *)
  let sample =
    "prax.incr.fragment 2\n\
     e f4:gp_p/1 a4:true\n\
     a r1\n\
     s f4:gp_q/1 v0\n"
  in
  check_b "well-formed sample decodes" true
    (Incr.fragment_of_string sample <> None);
  List.iter
    (fun (label, payload) ->
      check_b (label ^ " degrades to a miss") true
        (Incr.fragment_of_string payload = None))
    [
      ("empty payload", "");
      ("old format version", "prax.incr.fragment 1\ne gp_p(true)\n");
      ("missing magic", "e f4:gp_p/1 a4:true\n");
      ("unknown record tag", "prax.incr.fragment 2\nz f4:gp_p/1 a4:true\n");
      ( "answer before any entry",
        "prax.incr.fragment 2\na f4:gp_p/1 a4:true\n" );
      ("unknown term tag", "prax.incr.fragment 2\ne x4:gp_p/1 a4:true\n");
      ("missing argument", "prax.incr.fragment 2\ne f4:gp_p/1\n");
      ("name length overruns", "prax.incr.fragment 2\ne a999:true\n");
      ("zero arity", "prax.incr.fragment 2\ne f4:gp_p/0\n");
      ( "back-reference to an undefined node",
        "prax.incr.fragment 2\ne f4:gp_p/1 r7\n" );
      ("truncated mid-token", String.sub sample 0 (String.length sample - 3));
    ]

(* --- table splice -------------------------------------------------------- *)

let run_open_goals e preds =
  List.iter
    (fun p ->
      ignore (Engine.run_status e (Prax_ground.Analyze.open_goal p) (fun _ -> ())))
    preds

let ground_engine src =
  Prax_ground.Analyze.prepare ~mode:Database.Dynamic ~guard:Guard.unlimited
    (Parser.parse_clauses src)

let run_incr_tabled ~cache src =
  let abstract, preds, e = ground_engine src in
  let status, outcome =
    Incr.run_tabled ~cache ~table_class:"prop" ~engine:e ~clauses:abstract
      ~goals:(List.map Prax_ground.Analyze.open_goal preds)
      ()
  in
  (e, status, outcome)

(* Satellite lock: a fully spliced engine dumps its tables byte-identical
   to a from-scratch engine — call table, answers, and the space
   estimate all match, because the splice restores the exact demanded
   call-variant set and trie shape is a function of the key set. *)
let test_splice_dump_identity () =
  let src = logic_src "qsort" in
  let _, preds, e_scratch = ground_engine src in
  run_open_goals e_scratch preds;
  let d_scratch = Engine.dump_tables e_scratch in
  let cache = Analysis.memory_cache () in
  let e_cold, st_cold, o_cold = run_incr_tabled ~cache src in
  check_b "cold run complete" true (st_cold = Guard.Complete);
  check_s "cold incremental dump == scratch dump" d_scratch
    (Engine.dump_tables e_cold);
  check_i "cold run invalidates everything" o_cold.Incr.sccs
    o_cold.Incr.invalidated;
  check_i "cold run splices nothing" 0 o_cold.Incr.spliced;
  let e_warm, st_warm, o_warm = run_incr_tabled ~cache src in
  check_b "warm run complete" true (st_warm = Guard.Complete);
  check_i "warm run splices every SCC" o_warm.Incr.sccs o_warm.Incr.spliced;
  check_i "warm run invalidates nothing" 0 o_warm.Incr.invalidated;
  check_b "warm run installed entries by splice" true
    (Engine.spliced_entries e_warm > 0);
  check_s "spliced dump_tables byte-identical to scratch" d_scratch
    (Engine.dump_tables e_warm);
  check_i "table space estimate identical"
    (Engine.table_space_bytes e_scratch)
    (Engine.table_space_bytes e_warm)

(* A single-clause edit of a multi-SCC program invalidates a proper
   subset of the condensation (the CI job asserts the same property
   through the CLI as incr.cone_frac < 1000 permille). *)
let test_partial_invalidation () =
  let base =
    "leaf(a).\nleaf(b).\nmid1(X) :- leaf(X).\nmid2(X) :- mid1(X), leaf(X).\n\
     top(X) :- mid2(X).\n"
  in
  let edited =
    replace ~sub:"top(X) :- mid2(X)." ~by:"top(X) :- mid2(X), leaf(X)."
      base
  in
  let cache = Analysis.memory_cache () in
  let _, st0, _ = run_incr_tabled ~cache base in
  check_b "populate run complete" true (st0 = Guard.Complete);
  let e, st, o = run_incr_tabled ~cache edited in
  check_b "edited run complete" true (st = Guard.Complete);
  check_b "multi-SCC condensation" true (o.Incr.sccs > 1);
  check_i "only the edited top SCC recomputes" 1 o.Incr.invalidated;
  check_i "every other SCC splices" (o.Incr.sccs - 1) o.Incr.spliced;
  check_b "splice installed entries" true (Engine.spliced_entries e > 0);
  (* and the spliced result still equals scratch *)
  let _, preds, e_scratch = ground_engine edited in
  run_open_goals e_scratch preds;
  check_s "edited incremental dump == scratch dump"
    (Engine.dump_tables e_scratch) (Engine.dump_tables e)

(* --- the incremental-vs-scratch oracle ------------------------------------ *)

let status_str = function
  | Guard.Complete -> "complete"
  | Guard.Partial _ -> "partial"

(* What the oracle compares: everything report-visible.  Engine path
   counts (calls, resumptions) legitimately differ — a spliced entry
   never runs its producer — but answers, tables, and every rendered
   result must be byte-identical. *)
let fingerprint (r : Analysis.report) =
  String.concat "\n"
    [
      r.Analysis.payload_text;
      Metrics.json_to_string r.Analysis.payload_json;
      string_of_int r.Analysis.table_bytes;
      string_of_int r.Analysis.clause_count;
      status_str r.Analysis.status;
    ]

let oracle ?(seeds = [ 1; 2; 3 ]) ?guard ~label ~config ~mut name src =
  let a = analysis name in
  let cache = Analysis.memory_cache () in
  let scratch0 = Analysis.run a ~config ?guard src in
  let incr0 = Analysis.run_incr a ~config ?guard ~cache src in
  check_s (label ^ ": cold incremental == scratch") (fingerprint scratch0)
    (fingerprint incr0);
  let warm = Analysis.run_incr a ~config ?guard ~cache src in
  check_s (label ^ ": warm replay == scratch") (fingerprint scratch0)
    (fingerprint warm);
  List.iter
    (fun seed ->
      match mut ~seed src with
      | None -> ()
      | Some edited ->
          let incr = Analysis.run_incr a ~config ?guard ~cache edited in
          let scratch = Analysis.run a ~config ?guard edited in
          check_s
            (Printf.sprintf "%s: seed-%d edit, incremental == scratch" label
               seed)
            (fingerprint scratch) (fingerprint incr))
    seeds

let test_oracle_groundness_dynamic () =
  List.iter
    (fun (b : Registry.logic_bench) ->
      oracle
        ~label:("groundness/dynamic " ^ b.Registry.name)
        ~config:[ ("mode", "dynamic") ]
        ~mut:Mutate.mutate_pl "groundness" b.Registry.source)
    Registry.logic_benchmarks

let test_oracle_groundness_def () =
  List.iter
    (fun (b : Registry.logic_bench) ->
      oracle
        ~label:("groundness/def " ^ b.Registry.name)
        ~config:[ ("mode", "def") ]
        ~mut:Mutate.mutate_pl "groundness" b.Registry.source)
    Registry.logic_benchmarks

(* The stress corpus (examples/stress/) explodes under mode=dynamic; the
   def domain is its fast path and must stay exact under splicing. *)
let test_oracle_stress_def () =
  List.iter
    (fun (b : Registry.stress_bench) ->
      oracle ~seeds:[ 1; 2 ]
        ~label:("groundness/def stress " ^ b.Registry.name)
        ~config:[ ("mode", "def") ]
        ~mut:Mutate.mutate_pl "groundness" b.Registry.source)
    Registry.stress_benchmarks

let test_oracle_strictness () =
  List.iter
    (fun (b : Registry.fp_bench) ->
      oracle
        ~label:("strictness " ^ b.Registry.name)
        ~config:[] ~mut:Mutate.mutate_eq "strictness" b.Registry.source)
    Registry.fp_benchmarks

(* supplementary folding changes the derived rules, hence the fragments:
   the nosupp class must be exact too (and must not share the cache
   entries — its table_class differs, checked below). *)
let test_oracle_strictness_nosupp () =
  let src =
    (match Registry.find_fp "mergesort" with
    | Some b -> b
    | None -> Alcotest.fail "no fp benchmark mergesort")
      .Registry.source
  in
  oracle ~label:"strictness/nosupp mergesort"
    ~config:[ ("supplementary", "false") ]
    ~mut:Mutate.mutate_eq "strictness" src

let test_table_classes () =
  let tc name config =
    match Analysis.table_class (analysis name) ~config () with
    | Some c -> c
    | None -> Alcotest.failf "%s declares no table class" name
  in
  check_s "dynamic and compiled share tables" "prop"
    (tc "groundness" [ ("mode", "compiled") ]);
  check_s "dynamic is prop" "prop" (tc "groundness" [ ("mode", "dynamic") ]);
  check_s "def is its own class" "def" (tc "groundness" [ ("mode", "def") ]);
  check_b "supplementary setting splits the strictness class" true
    (tc "strictness" [ ("supplementary", "true") ]
    <> tc "strictness" [ ("supplementary", "false") ]);
  check_b "analyses without incremental support say so" true
    (Analysis.table_class (analysis "gaia") () = None);
  (* the class prefixes the closure digest, so equal digests in
     different classes cannot collide *)
  check_b "fragment keys are class-prefixed" true
    (Incr.fragment_key ~table_class:"prop" "abc"
    <> Incr.fragment_key ~table_class:"def" "abc")

(* --- mutation generator --------------------------------------------------- *)

let test_mutate_deterministic () =
  let src = logic_src "queens" in
  List.iter
    (fun seed ->
      match (Mutate.mutate_pl ~seed src, Mutate.mutate_pl ~seed src) with
      | Some a, Some b ->
          check_s (Printf.sprintf "seed %d reproducible" seed) a b;
          check_b "mutation changed the source" true (a <> src);
          check_b "mutation still parses" true
            (match Parser.parse_clauses a with
            | _ -> true
            | exception _ -> false)
      | _ -> Alcotest.failf "seed %d: no mutation on queens" seed)
    [ 1; 2; 3; 4; 5 ];
  (* op directives survive re-printing: press1 defines === via :- op *)
  (match Mutate.mutate_pl ~seed:1 (logic_src "press1") with
  | None -> Alcotest.fail "press1 should mutate"
  | Some m ->
      check_b "mutated press1 re-parses through its op directive" true
        (match Parser.parse_clauses m with
        | _ -> true
        | exception _ -> false));
  match
    Mutate.apply_n ~seed:7 ~n:4 Mutate.mutate_pl (logic_src "qsort")
  with
  | None -> Alcotest.fail "4-step mutation chain on qsort"
  | Some m ->
      check_b "chained mutation parses" true
        (match Parser.parse_clauses m with
        | _ -> true
        | exception _ -> false)

let test_mutate_eq_valid () =
  let src =
    (match Registry.find_fp "eu" with
    | Some b -> b
    | None -> Alcotest.fail "no fp benchmark eu")
      .Registry.source
  in
  List.iter
    (fun seed ->
      match Mutate.mutate_eq ~seed src with
      | None -> Alcotest.failf "seed %d: no .eq mutation" seed
      | Some m ->
          check_b "mutated source differs" true (m <> src);
          check_b "mutated .eq source checks" true
            (match Prax_fp.Check.parse_and_check m with
            | _ -> true
            | exception _ -> false))
    [ 1; 2; 3; 4 ]

(* --- the store binding ----------------------------------------------------- *)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-incr-test-%d-%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff))
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

(* Fragments persisted through the snapshot store survive a re-open (the
   daemon-restart shape) and splice back to a scratch-identical report. *)
let test_store_cache_roundtrip () =
  with_tmpdir (fun dir ->
      let a = analysis "groundness" in
      let config = [ ("mode", "dynamic") ] in
      let src = logic_src "queens" in
      let tc =
        match Analysis.table_class a ~config () with
        | Some c -> c
        | None -> Alcotest.fail "groundness must declare a table class"
      in
      let scratch = Analysis.run a ~config src in
      let store = Store.open_dir dir in
      let cache =
        Incr.cache_of_store store ~analysis:"groundness" ~table_class:tc
      in
      ignore (Analysis.run_incr a ~config ~cache src);
      check_b "fragments land under incr/<analysis>/" true
        (Sys.is_directory Filename.(concat (concat dir "incr") "groundness"));
      let store2 = Store.open_dir dir in
      let cache2 =
        Incr.cache_of_store store2 ~analysis:"groundness" ~table_class:tc
      in
      let warm = Analysis.run_incr a ~config ~cache:cache2 src in
      check_s "re-opened store splices to a scratch-identical report"
        (fingerprint scratch) (fingerprint warm))

(* On-disk corruption of a fragment snapshot must degrade to a miss (the
   store CRC rejects it), and the run must still be scratch-identical. *)
let test_store_cache_corruption () =
  with_tmpdir (fun dir ->
      let a = analysis "groundness" in
      let config = [ ("mode", "dynamic") ] in
      let src = logic_src "qsort" in
      let store = Store.open_dir dir in
      let cache =
        Incr.cache_of_store store ~analysis:"groundness" ~table_class:"prop"
      in
      ignore (Analysis.run_incr a ~config ~cache src);
      let frag_dir = Filename.(concat (concat dir "incr") "groundness") in
      let snaps =
        Sys.readdir frag_dir |> Array.to_list
        |> List.filter (fun n -> not (Sys.is_directory (Filename.concat frag_dir n)))
      in
      check_b "store holds fragment snapshots" true (snaps <> []);
      List.iter
        (fun n ->
          let path = Filename.concat frag_dir n in
          let oc = open_out_gen [ Open_append ] 0o644 path in
          output_string oc "tear";
          close_out oc)
        snaps;
      let scratch = Analysis.run a ~config src in
      let after = Analysis.run_incr a ~config ~cache src in
      check_s "corrupt fragments degrade to recomputation, same report"
        (fingerprint scratch) (fingerprint after))

(* Satellite lock: open_dir's orphan sweep recurses into the per-SCC
   subdirectories, still counted under store.tmp_swept. *)
let test_recursive_tmp_sweep () =
  with_tmpdir (fun dir ->
      let sub = Filename.(concat (concat dir "incr") "groundness") in
      Unix.mkdir (Filename.concat dir "incr") 0o755;
      Unix.mkdir sub 0o755;
      (* a dead writer's orphan, two levels below the store root *)
      let orphan = Filename.concat sub "frag.snap.tmp.999999999.7" in
      let oc = open_out orphan in
      output_string oc "half-written";
      close_out oc;
      let live = Filename.concat sub "frag.keep" in
      let oc = open_out live in
      output_string oc "snapshot";
      close_out oc;
      let before = Metrics.counter_value "store.tmp_swept" in
      ignore (Store.open_dir dir);
      check_b "orphan temp in a subdirectory is swept" false
        (Sys.file_exists orphan);
      check_b "non-temp files are untouched" true (Sys.file_exists live);
      check_i "sweep is counted" (before + 1)
        (Metrics.counter_value "store.tmp_swept"))

(* --- suite ----------------------------------------------------------------- *)

let () =
  Alcotest.run "incr"
    [
      ( "depgraph",
        [
          Alcotest.test_case "condensation" `Quick test_condensation;
          Alcotest.test_case "dependent cone" `Quick test_cone;
          Alcotest.test_case "digests track the cone" `Quick test_digests;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "corruption -> miss" `Quick test_codec_corruption;
        ] );
      ( "splice",
        [
          Alcotest.test_case "dump_tables byte-identity" `Quick
            test_splice_dump_identity;
          Alcotest.test_case "single edit invalidates a proper cone" `Quick
            test_partial_invalidation;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "groundness mode=dynamic corpus" `Slow
            test_oracle_groundness_dynamic;
          Alcotest.test_case "groundness mode=def corpus" `Slow
            test_oracle_groundness_def;
          Alcotest.test_case "groundness mode=def stress" `Slow
            test_oracle_stress_def;
          Alcotest.test_case "strictness corpus" `Slow test_oracle_strictness;
          Alcotest.test_case "strictness nosupp" `Quick
            test_oracle_strictness_nosupp;
          Alcotest.test_case "table classes" `Quick test_table_classes;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "deterministic and parseable" `Quick
            test_mutate_deterministic;
          Alcotest.test_case ".eq mutations check" `Quick test_mutate_eq_valid;
        ] );
      ( "store",
        [
          Alcotest.test_case "store-backed cache round-trip" `Quick
            test_store_cache_roundtrip;
          Alcotest.test_case "on-disk corruption -> miss" `Quick
            test_store_cache_corruption;
          Alcotest.test_case "recursive temp sweep" `Quick
            test_recursive_tmp_sweep;
        ] );
    ]
