(** A bottom-up Datalog engine: naive and semi-naive evaluation of
    range-restricted rules over constant tuples.

    This is the Coral-style baseline of the paper's related-work
    comparison (Section 7) and the substrate for the magic-sets and
    supplementary-magic ablations: Prop and strictness abstract programs
    are Datalog once their base relations are grounded
    ({!From_prop}). *)

open Prax_logic
module Metrics = Prax_metrics.Metrics
module Guard = Prax_guard.Guard

let m_iterations =
  Metrics.counter ~units:"iterations"
    ~doc:"bottom-up fixpoint iterations (naive and semi-naive)"
    "datalog.iterations"

let m_derivations =
  Metrics.counter ~units:"derivations"
    ~doc:"rule-body matches producing a candidate fact" "datalog.derivations"

let m_facts_inserted =
  Metrics.counter ~units:"facts" ~doc:"new tuples added to the fact store"
    "datalog.facts_inserted"

let m_facts_deduped =
  Metrics.counter ~units:"facts"
    ~doc:"candidate tuples already present in the fact store"
    "datalog.facts_deduped"

let m_delta_tuples =
  Metrics.counter ~units:"facts"
    ~doc:"tuples carried in delta relations across all iterations"
    "datalog.delta_tuples"

let m_aborts =
  Metrics.counter ~units:"aborts"
    ~doc:"bottom-up fixpoints stopped early by budget exhaustion"
    "datalog.aborts"

type atom = { pred : string * int; args : Term.t array }

type rule = { head : atom; body : atom list }

let atom_to_string a =
  let name, _ = a.pred in
  if Array.length a.args = 0 then name
  else
    Printf.sprintf "%s(%s)" name
      (String.concat ","
         (Array.to_list (Array.map Pretty.term_to_string a.args)))

let rule_to_string r =
  match r.body with
  | [] -> atom_to_string r.head ^ "."
  | b ->
      atom_to_string r.head ^ " :- "
      ^ String.concat ", " (List.map atom_to_string b)
      ^ "."

(* --- fact store -------------------------------------------------------- *)

module Tuple = struct
  type t = Term.t array

  let equal a b = Array.length a = Array.length b && Array.for_all2 Term.equal a b

  (* fold the O(1) per-term hashes directly instead of materializing an
     intermediate int array for Hashtbl.hash to walk *)
  let hash (t : t) =
    Array.fold_left
      (fun acc x -> ((acc * 65599) + Term.hash x) land max_int)
      (Array.length t) t
end

module TupleTbl = Hashtbl.Make (Tuple)

type relation = { mutable tuples : Term.t array list; index : unit TupleTbl.t }

type db = { rels : (string * int, relation) Hashtbl.t }

let create_db () = { rels = Hashtbl.create 64 }

let relation db pred =
  match Hashtbl.find_opt db.rels pred with
  | Some r -> r
  | None ->
      let r = { tuples = []; index = TupleTbl.create 64 } in
      Hashtbl.add db.rels pred r;
      r

let add_fact db pred (tuple : Term.t array) : bool =
  let r = relation db pred in
  if TupleTbl.mem r.index tuple then begin
    Metrics.incr m_facts_deduped;
    false
  end
  else begin
    TupleTbl.add r.index tuple ();
    r.tuples <- tuple :: r.tuples;
    Metrics.incr m_facts_inserted;
    true
  end

let fact_count db =
  Hashtbl.fold (fun _ r acc -> acc + List.length r.tuples) db.rels 0

let tuples_of db pred =
  match Hashtbl.find_opt db.rels pred with None -> [] | Some r -> r.tuples

(* --- matching ---------------------------------------------------------- *)

(* environments: small association lists var id -> constant *)
type env = (int * Term.t) list

let match_arg (env : env) (pat : Term.t) (v : Term.t) : env option =
  match pat with
  | Term.Var x -> (
      match List.assoc_opt x env with
      | Some c -> if Term.equal c v then Some env else None
      | None -> Some ((x, v) :: env))
  | c -> if Term.equal c v then Some env else None

let match_tuple env (pats : Term.t array) (tuple : Term.t array) : env option =
  let n = Array.length pats in
  let rec go env i =
    if i >= n then Some env
    else
      match match_arg env pats.(i) tuple.(i) with
      | Some env' -> go env' (i + 1)
      | None -> None
  in
  go env 0

let subst_args env (args : Term.t array) : Term.t array =
  Array.map
    (fun a ->
      match a with
      | Term.Var x -> (
          match List.assoc_opt x env with
          | Some c -> c
          | None -> invalid_arg "Datalog: unsafe rule (unbound head variable)")
      | c -> c)
    args

(* --- evaluation ---------------------------------------------------------- *)

type stats = {
  mutable iterations : int;
  mutable derivations : int;
  mutable deltas : int list;
      (** new facts per iteration, oldest first — the convergence profile
          of the fixpoint (a stratified program would have one such
          profile per stratum; this engine evaluates a single stratum) *)
  mutable status : Guard.status;
      (** [Partial] when a budget stopped the fixpoint before it
          converged.  Bottom-up derivation only ever adds true facts, so
          the database then holds a sound {e under}-approximation of the
          model: every fact present is derivable, but absence proves
          nothing — the dual of the tabled engine's widening. *)
}

(* Evaluate [body] under [env], matching atom [i] against the given
   tuple source selector, and call [k] with each complete environment. *)
let rec eval_body db (source : int -> string * int -> Term.t array list)
    (body : atom list) (i : int) (env : env) (k : env -> unit) : unit =
  match body with
  | [] -> k env
  | b :: rest ->
      List.iter
        (fun tuple ->
          match match_tuple env b.args tuple with
          | Some env' -> eval_body db source rest (i + 1) env' k
          | None -> ())
        (source i b.pred)

(** Naive evaluation: recompute all rules from the full database until no
    new facts appear.  Under a [guard], budget exhaustion stops the
    fixpoint cleanly: the facts derived so far stay in [db] and
    [stats.status] reports [Partial]. *)
let naive ?(guard = Guard.unlimited) (rules : rule list) (db : db) : stats =
  let st =
    { iterations = 0; derivations = 0; deltas = []; status = Guard.Complete }
  in
  (try
     let changed = ref true in
     while !changed do
       changed := false;
       st.iterations <- st.iterations + 1;
       Metrics.incr m_iterations;
       let fresh = ref 0 in
       List.iter
         (fun r ->
           eval_body db
             (fun _ pred -> tuples_of db pred)
             r.body 0 []
             (fun env ->
               Guard.check guard;
               st.derivations <- st.derivations + 1;
               Metrics.incr m_derivations;
               if add_fact db r.head.pred (subst_args env r.head.args) then begin
                 incr fresh;
                 changed := true
               end))
         rules;
       Metrics.add m_delta_tuples !fresh;
       st.deltas <- st.deltas @ [ !fresh ]
     done
   with Guard.Exhausted reason ->
     Metrics.incr m_aborts;
     st.status <- Guard.Partial { reason; exhausted_entries = 0 });
  st

(** Semi-naive evaluation with delta relations: each iteration matches
    each rule once per body position, that position restricted to the
    previous iteration's new facts. *)
let seminaive ?(guard = Guard.unlimited) (rules : rule list) (db : db) : stats
    =
  let st =
    { iterations = 0; derivations = 0; deltas = []; status = Guard.Complete }
  in
  (* deltas from facts present initially *)
  let delta : (string * int, Term.t array list) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter (fun pred r -> Hashtbl.replace delta pred r.tuples) db.rels;
  (try
     let continue_ = ref true in
     while !continue_ do
       st.iterations <- st.iterations + 1;
       Metrics.incr m_iterations;
       let next_delta : (string * int, Term.t array list) Hashtbl.t =
         Hashtbl.create 32
       in
       let emit pred tuple =
         Guard.check guard;
         st.derivations <- st.derivations + 1;
         Metrics.incr m_derivations;
         if add_fact db pred tuple then
           Hashtbl.replace next_delta pred
             (tuple
             :: Option.value ~default:[] (Hashtbl.find_opt next_delta pred))
       in
       List.iter
         (fun r ->
           let n = List.length r.body in
           for d = 0 to n - 1 do
             (* position d reads the delta; others read the full store *)
             let source i pred =
               if i = d then
                 Option.value ~default:[] (Hashtbl.find_opt delta pred)
               else tuples_of db pred
             in
             eval_body db source r.body 0 [] (fun env ->
                 emit r.head.pred (subst_args env r.head.args))
           done)
         rules;
       let fresh =
         Hashtbl.fold (fun _ ts acc -> acc + List.length ts) next_delta 0
       in
       Metrics.add m_delta_tuples fresh;
       st.deltas <- st.deltas @ [ fresh ];
       if Hashtbl.length next_delta = 0 then continue_ := false
       else begin
         Hashtbl.reset delta;
         Hashtbl.iter (Hashtbl.replace delta) next_delta
       end
     done
   with Guard.Exhausted reason ->
     Metrics.incr m_aborts;
     st.status <- Guard.Partial { reason; exhausted_entries = 0 });
  st

(* --- program loading ------------------------------------------------------ *)

(** Split rules into extensional facts (loaded into the database) and
    intensional rules. *)
let load (rules : rule list) : rule list * db =
  let db = create_db () in
  let intensional =
    List.filter
      (fun r ->
        match r.body with
        | [] ->
            ignore (add_fact db r.head.pred r.head.args);
            false
        | _ -> true)
      rules
  in
  (intensional, db)

(** Answers to a query atom after evaluation. *)
let query (db : db) (q : atom) : Term.t array list =
  List.filter_map
    (fun tuple ->
      match match_tuple [] q.args tuple with
      | Some _ -> Some tuple
      | None -> None)
    (tuples_of db q.pred)
