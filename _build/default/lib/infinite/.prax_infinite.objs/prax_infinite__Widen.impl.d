lib/infinite/widen.ml: Array Canon Database List Option Parser Prax_logic Prax_tabling String Subst Term
