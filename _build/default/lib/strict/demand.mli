(** The three demand extents of the strictness analysis: [E] (normal
    form), [D] (head normal form), [N] (null), ordered N < D < E. *)

open Prax_logic

type t = E | D | N

val to_atom : t -> Term.t

val of_term : Term.t -> t option
(** Unbound variables read as [N] (no guaranteed demand). *)

val to_char : t -> char
val rank : t -> int
val glb : t -> t -> t
val lub : t -> t -> t
val all : t list
val is_strict : t -> bool
