test/test_logic.ml: Alcotest Canon Database List Option Parser Prax_logic Pretty Printf QCheck2 QCheck_alcotest Sld Subst Term Unify
