(** Clause database with two storage modes, modelling the paper's
    preprocessing trade-off: [Dynamic] (assert + interpret; cheap to
    load) vs [Compiled] (closure-compiled head matchers + first-argument
    index; cheap to resolve). *)

type mode = Dynamic | Compiled

type pred = string * int

type cclause
(** A stored clause, canonicalized so its variables are [0..nvars-1]. *)

type t

val create : ?mode:mode -> unit -> t

val assertz : t -> Parser.clause -> unit
val load_clauses : t -> Parser.clause list -> unit

val load_string : t -> string -> Term.t list
(** Parse and load a program; [:- op] directives take effect; all
    directives are returned in order. *)

val defined : t -> pred -> bool
val predicates : t -> pred list
val clauses_of : t -> pred -> cclause list

val matching : t -> Subst.t -> Term.t -> cclause list
(** Clauses possibly matching the goal, in source order (first-argument
    indexed in compiled mode). *)

val activate :
  cclause -> Subst.t -> Term.t -> (Subst.t * Term.t list) option
(** Resolve the clause head against the goal: the extended substitution
    and the freshly renamed body, or [None]. *)

val activate_with :
  unify:(Subst.t -> Term.t -> Term.t -> Subst.t option) ->
  cclause ->
  Subst.t ->
  Term.t ->
  (Subst.t * Term.t list) option
(** Like {!activate} with a caller-supplied unification (e.g. depth-k
    abstract unification). *)

val stored_words : t -> int
