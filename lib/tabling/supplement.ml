(** Supplementary tabling (Section 4.2): fold long clause bodies into
    chains of intermediate tabled predicates, so that partial joins are
    computed once per *variant* instead of once per derivation.

    For a clause [h :- l1, …, ln] the transformation produces

    {v
      s1(K1) :- l1.
      s2(K2) :- s1(K1), l2.
      …
      h :- s(n-1)(K(n-1)), ln.
    v}

    where [Ki] is the set of variables of [l1..li] still needed by the
    head or by literals after position [i].  Because the [si] are tabled,
    the existentially quantified intermediate variables (e.g. the demand
    variables of the strictness formulation) are projected away at each
    step, collapsing the multiplicative derivation space to an additive
    one — the deductive-database "supplementary magic" idea transposed to
    tabling, exactly as the paper suggests for the strictness analyser.

    This is semantics-preserving (a fold/unfold transformation): the
    minimal model restricted to the original predicates is unchanged. *)

open Prax_logic

let intersect a b = List.filter (fun x -> List.mem x b) a

(** Fold one clause if its body is longer than [threshold]. *)
let fold_clause ~threshold ~prefix idx (c : Parser.clause) :
    Parser.clause list =
  let body = c.Parser.body in
  let n = List.length body in
  if n <= threshold then [ c ]
  else begin
    let body_arr = Array.of_list body in
    let head_vars = Term.vars c.Parser.head in
    (* vars needed strictly after position i (0-based, inclusive of head) *)
    let needed_after i =
      let later = ref head_vars in
      for j = i to n - 1 do
        later := Term.vars body_arr.(j) @ !later
      done;
      List.sort_uniq Int.compare !later
    in
    let out = ref [] in
    let seen = ref [] in
    (* prev: the atom carrying the join so far (None before l1) *)
    let prev = ref None in
    for i = 0 to n - 2 do
      let lit = body_arr.(i) in
      seen := List.sort_uniq Int.compare (Term.vars lit @ !seen);
      let keep = intersect !seen (needed_after (i + 1)) in
      let sup =
        Term.mkl
          (Printf.sprintf "%s%d_%d" prefix idx (i + 1))
          (List.map (fun v -> Term.var v) keep)
      in
      let body_i =
        match !prev with None -> [ lit ] | Some p -> [ p; lit ]
      in
      out := { Parser.head = sup; body = body_i } :: !out;
      prev := Some sup
    done;
    let last = body_arr.(n - 1) in
    let final_body =
      match !prev with None -> [ last ] | Some p -> [ p; last ]
    in
    List.rev ({ Parser.head = c.Parser.head; body = final_body } :: !out)
  end

(** Fold every clause of a program whose body exceeds [threshold]
    literals. *)
let fold_program ?(threshold = 2) ?(prefix = "supp$") clauses :
    Parser.clause list =
  List.concat (List.mapi (fold_clause ~threshold ~prefix) clauses)
