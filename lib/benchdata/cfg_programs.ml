(** Textual control-flow-graph programs ([.cfg] format, see
    docs/ANALYSES.md) for the Section 7 dataflow corpus.  The paper
    reports no Table for these; they exercise the demand-driven
    reaching-definitions analysis at realistic shapes. *)

(** The running interprocedural example: main initializes, loops calling
    helper, then reads the results (mirrors [Cfg.example]). *)
let interp =
  "proc main\n\
   node 0 entry\n\
   node 1 assign x\n\
   node 2 assign y\n\
   node 3 test x\n\
   node 4 call helper\n\
   node 5 assign y x\n\
   node 6 test y\n\
   node 7 assign z y\n\
   node 8 exit\n\
   edge 0 1\n\
   edge 1 2\n\
   edge 2 3\n\
   edge 3 4\n\
   edge 3 7\n\
   edge 4 5\n\
   edge 5 6\n\
   edge 6 3\n\
   edge 6 7\n\
   edge 7 8\n\
   proc helper\n\
   node 10 entry\n\
   node 11 test y\n\
   node 12 assign x y\n\
   node 13 skip\n\
   node 14 exit\n\
   edge 10 11\n\
   edge 11 12\n\
   edge 11 13\n\
   edge 12 13\n\
   edge 13 14\n"

(** A looping ladder of [rungs] define/test/branch rungs: definitions
    made early must be chased through many nodes (the [Cfg.ladder]
    shape, rendered textually). *)
let ladder ~rungs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "proc loop\nnode 0 entry\n";
  let id = ref 1 and prev = ref 0 in
  for r = 0 to rungs - 1 do
    let var = Printf.sprintf "v%d" (r mod 8) in
    let use = Printf.sprintf "v%d" ((r + 1) mod 8) in
    let def = !id and test = !id + 1 and skip = !id + 2 in
    id := !id + 3;
    Buffer.add_string buf
      (Printf.sprintf "node %d assign %s %s\nnode %d test %s\nnode %d skip\n"
         def var use test var skip);
    Buffer.add_string buf
      (Printf.sprintf "edge %d %d\nedge %d %d\nedge %d %d\nedge %d %d\n" !prev
         def def test test skip def skip);
    prev := skip
  done;
  let exit = !id in
  Buffer.add_string buf
    (Printf.sprintf "node %d exit\nedge %d %d\nedge %d %d\n" exit !prev exit
       (exit - 1) 1);
  Buffer.contents buf

let ladder8 = ladder ~rungs:8
let ladder24 = ladder ~rungs:24
