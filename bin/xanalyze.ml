(* xanalyze — command-line front end to the analysis registry.

     xanalyze --list-analyses             print the registry
     xanalyze groundness file.pl          Prop groundness of a logic program
     xanalyze strictness file.eq          strictness of a functional program
     xanalyze depthk -k 2 file.pl         depth-k groundness
     xanalyze analyze NAME FILE           any registered analysis by name
     xanalyze batch DIR --corpus all      supervised batch over a corpus

   Every analysis command dispatches through the Prax.Analysis registry
   (docs/ANALYSES.md): the named subcommands only map their flags to
   configuration assignments.  Input "-" reads stdin.  --timings prints
   the phase breakdown the paper reports.

   Resource budgets (docs/ROBUSTNESS.md): --timeout DUR, --max-steps N,
   --max-table-bytes N bound the evaluation; on exhaustion the analysis
   degrades to a sound partial result and the process exits with
   EXIT_PARTIAL (3).  Malformed input is reported as a structured
   file:line:col diagnostic on stderr with EXIT_INPUT (1). *)

open Cmdliner
open Prax

(* Documented exit codes (also in docs/ROBUSTNESS.md):
     0  complete result
     1  input or usage error (structured diagnostic on stderr)
     3  partial result: a resource budget was exhausted and the printed
        result is a sound over-approximation (in batch mode: at least
        one job degraded to a partial result)
     4  batch only: at least one worker crashed after exhausting its
        retries; the batch report still accounts for every job
     5  client only: the daemon shed the request (overloaded, rejected,
        or draining) — retry later
     6  client only: the daemon was unreachable
     7  client only: the daemon answered, but with a malformed,
        truncated, or oversized reply — the wire protocol was violated,
        so nothing it said can be trusted
   130/143  batch interrupted by SIGINT/SIGTERM after killing and
        reaping every in-flight worker (no orphan processes)
   (124/125 are reserved by cmdliner for CLI parse/internal errors.) *)
let exit_input = 1
let exit_partial = 3
let exit_crashed = 4
let exit_shed = 5
let exit_unreachable = 6
let exit_protocol = 7

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path -> (
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "xanalyze: %s\n" msg;
        exit exit_input)

let bench_source_of_kind (kind : Analysis.source_kind) name =
  match kind with
  | Analysis.Logic_program ->
      Option.map
        (fun (b : Benchdata.Registry.logic_bench) -> b.source)
        (Benchdata.Registry.find_logic name)
  | Analysis.Fp_program ->
      Option.map
        (fun (b : Benchdata.Registry.fp_bench) -> b.source)
        (Benchdata.Registry.find_fp name)
  | Analysis.Cfg_program ->
      Option.map
        (fun (b : Benchdata.Registry.cfg_bench) -> b.source)
        (Benchdata.Registry.find_cfg name)

let source_of ?kind ~bench name_or_path =
  if bench then
    let kinds =
      match kind with
      | Some k -> [ k ]
      | None ->
          [ Analysis.Logic_program; Analysis.Fp_program; Analysis.Cfg_program ]
    in
    match
      List.find_map (fun k -> bench_source_of_kind k name_or_path) kinds
    with
    | Some src -> src
    | None ->
        Printf.eprintf "unknown benchmark %s\n" name_or_path;
        exit exit_input
  else read_input name_or_path

(* --- structured diagnostics (docs/ROBUSTNESS.md) ------------------------- *)

(* Run [f] with every toolchain input-error exception rendered as a
   file:line:col diagnostic on stderr + EXIT_INPUT, instead of an OCaml
   backtrace. *)
let with_diagnostics ~file ~text f =
  let fail d =
    Printf.eprintf "%s\n" (Logic.Diag.to_string d);
    exit exit_input
  in
  try f () with
  | (Logic.Lexer.Lex_error _ | Logic.Parser.Parse_error _) as exn ->
      fail (Option.get (Logic.Diag.of_exn ~file ~text exn))
  | Fp.Lexer.Error (msg, offset) ->
      fail (Logic.Diag.at_offset ~file ~text ~offset msg)
  | Fp.Parser.Error msg | Fp.Check.Error msg -> fail (Logic.Diag.make ~file msg)
  | Tabling.Engine.Not_definite t ->
      fail
        (Logic.Diag.make ~file
           (Printf.sprintf "goal is not a definite-program construct: %s"
              (Logic.Pretty.term_to_string t)))
  | Logic.Sld.Instantiation_error what ->
      fail
        (Logic.Diag.make ~file
           (Printf.sprintf "arguments insufficiently instantiated in %s" what))
  | Logic.Sld.Type_error (expected, t) ->
      fail
        (Logic.Diag.make ~file
           (Printf.sprintf "type error: expected %s, got %s" expected
              (Logic.Pretty.term_to_string t)))
  | Logic.Sld.Existence_error (name, arity) ->
      fail
        (Logic.Diag.make ~file
           (Printf.sprintf "unknown predicate %s/%d" name arity))
  | Analysis.Config_error msg -> fail (Logic.Diag.make ~file msg)
  | Dataflow.Cfg.Parse_error msg -> fail (Logic.Diag.make ~file msg)

(* --- resource budgets ---------------------------------------------------- *)

let duration_conv =
  let parse s =
    match Guard.duration_of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid duration %S (expected e.g. 500ms, 2s, 1.5s, 1m)" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%gs" v)

let timeout_arg =
  Arg.(
    value
    & opt (some duration_conv) None
    & info [ "timeout" ] ~docv:"DUR"
        ~doc:
          "Wall-clock budget for the evaluation (e.g. $(b,100ms), $(b,2s), \
           $(b,1m)).  On exhaustion the analysis returns a sound partial \
           result and exits with code 3.")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Derivation-step budget for the evaluation.  On exhaustion the \
           analysis returns a sound partial result and exits with code 3.")

let max_table_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-table-bytes" ] ~docv:"N"
        ~doc:
          "Table-space budget in bytes (the engine's table estimate).  On \
           exhaustion the analysis returns a sound partial result and exits \
           with code 3.")

let guard_of timeout max_steps max_table_bytes =
  match (timeout, max_steps, max_table_bytes) with
  | None, None, None -> Guard.unlimited
  | _ -> Guard.create ?timeout ?max_steps ?max_table_bytes ()

(* Partial-result epilogue: notice on stderr (stdout stays the result /
   stats document), then the documented exit code. *)
let finish (status : Guard.status) =
  match status with
  | Guard.Complete -> ()
  | Guard.Partial { reason; exhausted_entries } ->
      Printf.eprintf
        "xanalyze: budget exhausted (%s): result is a sound \
         over-approximation (%d table entries widened)\n"
        (Guard.reason_to_string reason)
        exhausted_entries;
      exit exit_partial

(* --- stats emission (docs/METRICS.md) ----------------------------------- *)

let stats_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json); ("csv", `Csv) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Human) (some fmt) None
    & info [ "stats" ] ~docv:"FMT"
        ~doc:
          "Emit engine metrics after the run: $(b,human) (appended to the \
           report; the default when FMT is omitted), $(b,json) (the \
           versioned prax.stats document; replaces the report on stdout so \
           the output parses as one JSON value), or $(b,csv) (likewise \
           replaces the report).  The schema is documented in \
           docs/METRICS.md.")

(* json/csv must leave stdout machine-parseable, so they suppress the
   human report *)
let report_suppressed = function Some `Json | Some `Csv -> true | _ -> false

let emit_stats ~analysis ~input ~table_bytes ?phases ?(guard = Guard.unlimited)
    ?(status = Guard.Complete) stats =
  match stats with
  | None -> ()
  | Some fmt -> (
      let open Prax.Metrics in
      let g =
        gauge ~units:"bytes" ~doc:"call/answer table space estimate"
          "engine.table_space_bytes"
      in
      set g table_bytes;
      let snap = snapshot () in
      let phases =
        Option.map
          (fun (p : Analysis.phases) ->
            [
              ("preprocess", p.preproc);
              ("evaluate", p.analysis);
              ("collect", p.collection);
            ])
          phases
      in
      match fmt with
      | `Human ->
          print_newline ();
          print_string (snapshot_to_human snap)
      | `Json ->
          let extra =
            Guard.status_json_fields status @ Guard.budget_json_fields guard
          in
          print_endline
            (json_to_string
               (stats_doc ~tool:"xanalyze" ~analysis ~input ?phases ~extra snap))
      | `Csv -> print_string (snapshot_to_csv snap))

(* --- single-run commands: registry dispatch ------------------------------ *)

let find_analysis name =
  match Analysis.find name with
  | Some a -> a
  | None ->
      Printf.eprintf "xanalyze: unknown analysis %s (registered: %s)\n" name
        (String.concat ", " (Analysis.names ()));
      exit exit_input

(* One analysis of one input through the registry: resolve the source,
   run under the guard, print the driver-rendered report plus the shared
   timings line, emit stats, map the status to the exit code.  There is
   no per-analysis code here — the registry entry carries everything;
   the named subcommands below only translate their flags into
   configuration assignments. *)
(* The fragment cache behind [--incremental]: bound to the [incr/]
   subtree of a snapshot store when [--store] is given (fragments then
   survive the process and a later run splices them back), a
   process-local hashtable otherwise (only same-process reuse — still
   exercises the splice path, and what the daemon uses store-less). *)
let incr_cache a ~name ~config ~store =
  match store with
  | None -> Analysis.memory_cache ()
  | Some dir -> (
      match Analysis.table_class a ~config () with
      | Some table_class ->
          Incr.Incr.cache_of_store (Store.open_dir dir) ~analysis:name
            ~table_class
      | None ->
          (* no incremental support: run_incr falls back to run and
             never touches the cache *)
          Analysis.memory_cache ())

let run_single ~name ~config ~input ~bench ~timings ~stats ~timeout ~max_steps
    ~max_bytes ~incremental ~store =
  let a = find_analysis name in
  let src = source_of ~kind:a.Analysis.kind ~bench input in
  let guard = guard_of timeout max_steps max_bytes in
  let rep =
    with_diagnostics ~file:input ~text:src (fun () ->
        if incremental then
          let cache = incr_cache a ~name ~config ~store in
          Analysis.run_incr a ~config ~guard ~cache src
        else Analysis.run a ~config ~guard src)
  in
  if not (report_suppressed stats) then begin
    print_endline rep.Analysis.payload_text;
    if timings then Printf.printf "\n%s\n" (Analysis.timings_line rep)
  end;
  emit_stats ~analysis:name ~input ~table_bytes:rep.Analysis.table_bytes
    ~phases:rep.Analysis.phases ~guard ~status:rep.Analysis.status stats;
  finish rep.Analysis.status

let input_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let bench_flag =
  Arg.(
    value & flag
    & info [ "bench" ] ~doc:"Treat FILE as a corpus benchmark name.")

let timings_flag =
  Arg.(value & flag & info [ "timings" ] ~doc:"Print the phase breakdown.")

let incremental_flag =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Edit-aware re-analysis (docs/INCREMENTAL.md): consult a per-SCC \
           fragment cache keyed by closure digest, splice unchanged cones' \
           tables back, and recompute only the dependent cone of the edit. \
           The report is byte-identical to a from-scratch run.  Pair with \
           $(b,--store) to persist fragments across processes; \
           analyses without incremental support fall back to a full run.")

let incr_store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persist the $(b,--incremental) fragment cache under the snapshot \
           store at $(docv) (created if needed; atomic writes, CRC \
           trailers, orphan-temp sweep).  Without it the cache lives only \
           for this process.")

let groundness_cmd =
  let run input bench timings compiled stats timeout max_steps max_bytes
      incremental store =
    run_single ~name:"groundness"
      ~config:(if compiled then [ ("mode", "compiled") ] else [])
      ~input ~bench ~timings ~stats ~timeout ~max_steps ~max_bytes
      ~incremental ~store
  in
  let compiled =
    Arg.(value & flag & info [ "compiled" ]
           ~doc:"Use the compiled clause store instead of dynamic (assert) mode.")
  in
  Cmd.v
    (Cmd.info "groundness"
       ~doc:"Prop-domain groundness analysis of a logic program (Figure 1)")
    Term.(
      const run $ input_pos $ bench_flag $ timings_flag $ compiled $ stats_arg
      $ timeout_arg $ max_steps_arg $ max_table_bytes_arg $ incremental_flag
      $ incr_store_arg)

let strictness_cmd =
  let run input bench timings no_supp stats timeout max_steps max_bytes
      incremental store =
    run_single ~name:"strictness"
      ~config:(if no_supp then [ ("supplementary", "false") ] else [])
      ~input ~bench ~timings ~stats ~timeout ~max_steps ~max_bytes
      ~incremental ~store
  in
  let no_supp =
    Arg.(value & flag & info [ "no-supplementary" ]
           ~doc:"Disable supplementary tabling (Section 4.2). May be very slow.")
  in
  Cmd.v
    (Cmd.info "strictness"
       ~doc:
         "Demand-propagation strictness analysis of a lazy functional \
          program (Figure 3)")
    Term.(
      const run $ input_pos $ bench_flag $ timings_flag $ no_supp $ stats_arg
      $ timeout_arg $ max_steps_arg $ max_table_bytes_arg $ incremental_flag
      $ incr_store_arg)

let depthk_cmd =
  let run input bench timings k stats timeout max_steps max_bytes incremental
      store =
    run_single ~name:"depthk"
      ~config:[ ("k", string_of_int k) ]
      ~input ~bench ~timings ~stats ~timeout ~max_steps ~max_bytes
      ~incremental ~store
  in
  let k =
    Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Term-depth bound.")
  in
  Cmd.v
    (Cmd.info "depthk"
       ~doc:"Groundness analysis with depth-k term abstraction (Section 5)")
    Term.(
      const run $ input_pos $ bench_flag $ timings_flag $ k $ stats_arg
      $ timeout_arg $ max_steps_arg $ max_table_bytes_arg $ incremental_flag
      $ incr_store_arg)

(* --- analyze: any registered analysis by name ----------------------------- *)

let set_args =
  Arg.(
    value & opt_all string []
    & info [ "set" ] ~docv:"KEY=VALUE"
        ~doc:
          "Override a configuration default of the analysis (repeatable; \
           comma-separated assignment lists accepted).  Unknown keys are an \
           input error; $(b,--list-analyses) prints each analysis's \
           accepted keys and defaults.")

let parse_sets ~what sets =
  List.concat_map
    (fun s ->
      match Analysis.assignments_of_string s with
      | Ok kvs -> kvs
      | Error msg ->
          Printf.eprintf "%s: %s\n" what msg;
          exit exit_input)
    sets

let analyze_cmd =
  let run name input bench sets timings stats timeout max_steps max_bytes
      incremental store =
    run_single ~name
      ~config:(parse_sets ~what:"xanalyze analyze" sets)
      ~input ~bench ~timings ~stats ~timeout ~max_steps ~max_bytes
      ~incremental ~store
  in
  let aname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ANALYSIS"
          ~doc:"Registered analysis name (see $(b,xanalyze --list-analyses)).")
  in
  let input =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run any registered analysis on an input (pure registry dispatch; \
          the named subcommands are shorthands for this)")
    Term.(
      const run $ aname $ input $ bench_flag $ set_args $ timings_flag
      $ stats_arg $ timeout_arg $ max_steps_arg $ max_table_bytes_arg
      $ incremental_flag $ incr_store_arg)

(* --- run: concrete execution -------------------------------------------- *)

let run_cmd =
  let run input bench query limit timeout max_steps =
    let src = source_of ~bench input in
    let guard =
      match (timeout, max_steps) with
      | None, None -> Guard.unlimited
      | _ -> Guard.create ?timeout ?max_steps ()
    in
    let status =
      with_diagnostics ~file:input ~text:src (fun () ->
          let db = Logic.Database.create () in
          ignore (Logic.Database.load_string db src);
          let goal = Logic.Parser.parse_term query in
          let solutions, status =
            Logic.Sld.solutions_status ~limit ~guard db goal
          in
          if solutions = [] then print_endline "no."
          else
            List.iter
              (fun s ->
                print_endline
                  (Logic.Pretty.term_to_string (Logic.Canon.canonical s goal)))
              solutions;
          status)
    in
    (match status with
    | Guard.Complete -> ()
    | Guard.Partial { reason; _ } ->
        Printf.eprintf
          "xanalyze: budget exhausted (%s): solution enumeration stopped \
           early (the listed solutions are valid but possibly incomplete)\n"
          (Guard.reason_to_string reason);
        exit exit_partial)
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let query =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let bench =
    Arg.(value & flag & info [ "bench" ] ~doc:"Treat FILE as a corpus benchmark name.")
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Maximum solutions.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a Prolog query against a program (SLD)")
    Term.(
      const run $ input $ bench $ query $ limit $ timeout_arg $ max_steps_arg)

(* --- eval: run a functional program -------------------------------------- *)

let eval_cmd =
  let run input bench call fuel =
    let src = source_of ~bench input in
    with_diagnostics ~file:input ~text:src (fun () ->
        let prog = Fp.Check.parse_and_check src in
        let f, args =
          match String.index_opt call '(' with
          | None -> (call, [])
          | Some _ -> (
              (* parse the call as an expression *)
              match
                Fp.Parser.parse_program (Printf.sprintf "q() = %s;" call)
              with
              | [ { Fp.Ast.rhs = Fp.Ast.App (f, args); _ } ] -> (f, args)
              | _ ->
                  Printf.eprintf "cannot parse call %s\n" call;
                  exit exit_input)
        in
        print_endline (Fp.Eval.run ~fuel prog f args))
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let call =
    Arg.(value & pos 1 string "main()" & info [] ~docv:"CALL")
  in
  let bench =
    Arg.(value & flag & info [ "bench" ] ~doc:"Treat FILE as a corpus benchmark name.")
  in
  let fuel =
    Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~doc:"Reduction-step bound.")
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a call in a lazy functional program (call-by-need)")
    Term.(const run $ input $ bench $ call $ fuel)

(* --- types: Hindley-Milner inference -------------------------------------- *)

let types_cmd =
  let run input bench =
    let src = source_of ~bench input in
    with_diagnostics ~file:input ~text:src (fun () ->
        match Hm.Infer.infer_source src with
        | results ->
            List.iter
              (fun r -> print_endline (Hm.Infer.result_to_string r))
              results
        | exception Hm.Infer.Type_error msg ->
            Printf.eprintf "type error: %s\n" msg;
            exit exit_input)
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let bench =
    Arg.(value & flag & info [ "bench" ] ~doc:"Treat FILE as a corpus benchmark name.")
  in
  Cmd.v
    (Cmd.info "types"
       ~doc:
         "Hindley-Milner type analysis of a functional program by \
          occur-check unification (Section 6.1)")
    Term.(const run $ input $ bench)

(* --- widen: infinite-domain analysis --------------------------------------- *)

let widen_cmd =
  let run input bench chain =
    let src = source_of ~bench input in
    let rep =
      with_diagnostics ~file:input ~text:src (fun () ->
          Infinite.Widen.analyze ~chain src)
    in
    List.iter
      (fun r ->
        let name, arity = r.Prax_infinite.Widen.pred in
        Printf.printf "%s/%d%s:\n" name arity
          (if r.Prax_infinite.Widen.widened then " (widened)" else "");
        List.iter
          (fun a -> Printf.printf "  %s\n" (Logic.Pretty.term_to_string a))
          r.Prax_infinite.Widen.answers)
      rep.Prax_infinite.Widen.results
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let bench =
    Arg.(value & flag & info [ "bench" ] ~doc:"Treat FILE as a corpus benchmark name.")
  in
  let chain =
    Arg.(value & opt int 3 & info [ "chain" ]
           ~doc:"Ascending-chain length tolerated before widening to omega.")
  in
  Cmd.v
    (Cmd.info "widen"
       ~doc:
         "Successor-arithmetic analysis over an infinite domain with \
          on-the-fly widening (Section 6.1)")
    Term.(const run $ input $ bench $ chain)

(* --- batch: supervised analysis of a corpus ------------------------------ *)

(* One batch job = one registered analysis of one input, run in a forked
   worker under the supervisor (lib/serve, docs/ROBUSTNESS.md).  Job ids
   are "groundness:qsort" / "dataflow:path/to/prog.cfg"; sources are
   resolved in the parent (input errors exit 1 before anything forks)
   and inherited by the workers. *)

type batch_job = {
  bj_analysis : Analysis.t;
  bj_config : Analysis.config;  (* merged over the analysis's defaults *)
  bj_input : string;  (* bench name or file path, for display/keys *)
  bj_src : string;
}

(* The default analysis for a corpus entry is the first registrant of
   its source kind: groundness for logic benches, strictness for
   functional ones, dataflow for CFGs. *)
let default_for_kind kind =
  match
    List.find_opt (fun (a : Analysis.t) -> a.Analysis.kind = kind)
      (Analysis.all ())
  with
  | Some a -> a
  | None ->
      Printf.eprintf "xanalyze batch: no registered analysis accepts %s\n"
        (Analysis.kind_to_string kind);
      exit exit_input

let batch_jobs_of_dir ~analysis dir =
  let entries =
    try Array.to_list (Sys.readdir dir)
    with Sys_error msg ->
      Printf.eprintf "xanalyze batch: %s\n" msg;
      exit exit_input
  in
  List.filter_map
    (fun f ->
      let path = Filename.concat dir f in
      let ext = Filename.extension f in
      match analysis with
      | Some (a : Analysis.t) ->
          if List.mem ext a.Analysis.extensions then Some (a, path) else None
      | None ->
          Option.map (fun a -> (a, path)) (Analysis.claiming_extension ext))
    (List.sort String.compare entries)

let corpus_names_of_kind = function
  | Analysis.Logic_program ->
      List.map
        (fun (b : Benchdata.Registry.logic_bench) -> b.name)
        Benchdata.Registry.logic_benchmarks
  | Analysis.Fp_program ->
      List.map
        (fun (b : Benchdata.Registry.fp_bench) -> b.name)
        Benchdata.Registry.fp_benchmarks
  | Analysis.Cfg_program ->
      List.map
        (fun (b : Benchdata.Registry.cfg_bench) -> b.name)
        Benchdata.Registry.cfg_benchmarks

let corpus_kind_of name =
  if Benchdata.Registry.find_logic name <> None then
    Some Analysis.Logic_program
  else if Benchdata.Registry.find_fp name <> None then Some Analysis.Fp_program
  else if Benchdata.Registry.find_cfg name <> None then
    Some Analysis.Cfg_program
  else None

let batch_jobs_of_corpus ~analysis spec =
  let split spec =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match analysis with
  | Some (a : Analysis.t) ->
      let names =
        match spec with
        | "all" -> corpus_names_of_kind a.Analysis.kind
        | _ -> split spec
      in
      List.map
        (fun name ->
          if bench_source_of_kind a.Analysis.kind name = None then begin
            Printf.eprintf "xanalyze batch: unknown %s benchmark %s\n"
              (Analysis.kind_to_string a.Analysis.kind)
              name;
            exit exit_input
          end;
          (a, name))
        names
  | None ->
      let names =
        match spec with
        | "all" ->
            List.concat_map corpus_names_of_kind
              [
                Analysis.Logic_program; Analysis.Fp_program;
                Analysis.Cfg_program;
              ]
        | _ -> split spec
      in
      List.map
        (fun name ->
          match corpus_kind_of name with
          | Some k -> (default_for_kind k, name)
          | None ->
              Printf.eprintf "xanalyze batch: unknown benchmark %s\n" name;
              exit exit_input)
        names

let batch_cmd =
  let run dir corpus analysis sets runner njobs retries job_timeout store_dir
      stats timeout max_steps max_bytes =
    let analysis = Option.map find_analysis analysis in
    let overrides = parse_sets ~what:"xanalyze batch" sets in
    if overrides <> [] && analysis = None then begin
      Printf.eprintf "xanalyze batch: --set requires --analysis\n";
      exit exit_input
    end;
    let specs =
      (match dir with
      | None -> []
      | Some d ->
          if not (Sys.file_exists d && Sys.is_directory d) then begin
            Printf.eprintf "xanalyze batch: not a directory: %s\n" d;
            exit exit_input
          end;
          batch_jobs_of_dir ~analysis d)
      @ (match corpus with
        | None -> []
        | Some c -> batch_jobs_of_corpus ~analysis c)
    in
    if specs = [] then begin
      Printf.eprintf
        "xanalyze batch: nothing to do (give a DIR of .pl/.eq/.cfg files \
         and/or --corpus)\n";
      exit exit_input
    end;
    (* resolve every source and configuration up front: input errors are
       the caller's fault and exit 1 before any worker forks *)
    let table : (string, batch_job) Hashtbl.t = Hashtbl.create 64 in
    let jobs =
      List.filter_map
        (fun ((a : Analysis.t), input) ->
          let job = a.Analysis.name ^ ":" ^ input in
          if Hashtbl.mem table job then None
          else begin
            let bench = bench_source_of_kind a.Analysis.kind input <> None in
            let src = source_of ~kind:a.Analysis.kind ~bench input in
            let config =
              match
                Analysis.merge_config ~defaults:a.Analysis.defaults overrides
              with
              | Ok c -> c
              | Error msg ->
                  Printf.eprintf "xanalyze batch: %s\n" msg;
                  exit exit_input
            in
            Hashtbl.add table job
              { bj_analysis = a; bj_config = config; bj_input = input;
                bj_src = src };
            Some job
          end)
        specs
    in
    let store = Option.map Store.open_dir store_dir in
    (* Store keys must distinguish results that could differ: the
       analysis name, the exact source bytes, and the effective
       configuration (canonical k=v rendering).  The budget is
       deliberately not in the key — only complete results are
       persisted, and a complete result does not depend on how generous
       the budget was. *)
    let key_of job =
      let bj = Hashtbl.find table job in
      {
        Store.analysis = bj.bj_analysis.Analysis.name;
        source_digest = Store.digest_source bj.bj_src;
        config = Analysis.config_to_string bj.bj_config;
        schema_version = Analysis.report_schema_version;
      }
    in
    let cached ~job =
      Option.bind store (fun t -> Store.load t (key_of job))
    in
    let persist ~job ~payload =
      Option.iter (fun t -> Store.save t (key_of job) payload) store
    in
    (* the worker body — runs in the forked child; the payload persisted
       to the store (and replayed on warm starts) is the analysis's
       prax.report document *)
    let worker ~job ~attempt ~guard =
      (match Inject.worker_fault_of_env ~job ~attempt () with
      | Some fault -> Inject.apply_worker_fault fault
      | None -> ());
      let bj = Hashtbl.find table job in
      let rep =
        bj.bj_analysis.Analysis.run ~config:bj.bj_config ~guard bj.bj_src
      in
      let payload =
        Metrics.json_to_string
          (Analysis.report_to_json ~input:bj.bj_input rep)
      in
      match rep.Analysis.status with
      | Guard.Complete -> (Serve.Complete, payload)
      | Guard.Partial { reason; _ } ->
          (Serve.Partial_result (Guard.reason_to_string reason), payload)
    in
    let budget = Guard.spec ?timeout ?max_steps ?max_table_bytes:max_bytes () in
    let config =
      {
        Serve.default_config with
        Serve.jobs = max 1 njobs;
        retries = max 0 retries;
        job_timeout;
        budget;
      }
    in
    let quiet = report_suppressed stats in
    let total = List.length jobs in
    let done_count = ref 0 in
    let detail_of (r : Serve.report) =
      match r.Serve.outcome with
      | Serve.Done { from_cache = true; _ } -> "(store hit)"
      | Serve.Done { partial = Some reason; _ } -> "(" ^ reason ^ ")"
      | Serve.Done _ -> ""
      | Serve.Crashed { what; _ } -> "(" ^ what ^ ")"
    in
    let on_report (r : Serve.report) =
      incr done_count;
      if not quiet then
        Printf.printf "[%d/%d] %-40s %-8s %d attempt%s %6.2fs %s\n%!"
          !done_count total r.Serve.job
          (Serve.outcome_class r.Serve.outcome)
          r.Serve.attempts
          (if r.Serve.attempts = 1 then " " else "s")
          r.Serve.elapsed (detail_of r)
    in
    (* domains-mode progress omits wall times and attempt counts: reports
       arrive in input order and the lines are byte-for-byte identical
       whatever --jobs says (the multicore determinism smoke relies on
       this) *)
    let on_report_domains (r : Serve.report) =
      incr done_count;
      if not quiet then
        Printf.printf "[%d/%d] %-40s %-8s %s\n%!" !done_count total
          r.Serve.job
          (Serve.outcome_class r.Serve.outcome)
          (detail_of r)
    in
    let reports =
      try
        match runner with
        | `Domains ->
            Domains.run ~jobs:(max 1 njobs) ~budget ~cached ~persist
              ~on_report:on_report_domains ~worker jobs
        | `Fork ->
            Serve.run_batch ~config ~cached ~persist ~on_report ~worker jobs
      with Serve.Interrupted sg ->
        (* every in-flight worker is already SIGKILLed and reaped; exit
           the way a shell reports death-by-signal so wrappers see the
           interruption, not a bogus "success" *)
        let code =
          if sg = Sys.sigint then 130
          else if sg = Sys.sigterm then 143
          else 128 + abs sg
        in
        Printf.eprintf
          "\nxanalyze batch: interrupted (%s) — in-flight workers killed \
           and reaped\n"
          (if sg = Sys.sigint then "SIGINT"
           else if sg = Sys.sigterm then "SIGTERM"
           else Printf.sprintf "signal %d" sg);
        exit code
    in
    let count cls =
      List.length
        (List.filter
           (fun r -> String.equal (Serve.outcome_class r.Serve.outcome) cls)
           reports)
    in
    let complete = count "complete"
    and partial = count "partial"
    and crashed = count "crashed"
    and from_cache = count "cached" in
    if not quiet then begin
      Printf.printf
        "\nbatch: %d job%s — %d complete, %d partial, %d crashed, %d from \
         the store\n"
        total
        (if total = 1 then "" else "s")
        complete partial crashed from_cache;
      List.iter
        (fun (r : Serve.report) ->
          match r.Serve.outcome with
          | Serve.Crashed { what; stderr; _ } ->
              Printf.printf "  crashed: %s — %s after %d attempts%s\n"
                r.Serve.job what r.Serve.attempts
                (if stderr = "" then ""
                 else
                   "\n    stderr: "
                   ^ String.concat "\n    stderr: "
                       (String.split_on_char '\n' (String.trim stderr)))
          | Serve.Done _ -> ())
        reports
    end;
    (match stats with
    | None -> ()
    | Some fmt -> (
        let open Prax.Metrics in
        let snap = snapshot () in
        let input_label =
          String.concat "+"
            ((match dir with Some d -> [ d ] | None -> [])
            @ match corpus with Some c -> [ "corpus:" ^ c ] | None -> [])
        in
        match fmt with
        | `Human ->
            print_newline ();
            print_string (snapshot_to_human snap)
        | `Json ->
            let extra =
              [
                ("jobs", Int total);
                ("complete", Int complete);
                ("partial", Int partial);
                ("crashed", Int crashed);
                ("from_cache", Int from_cache);
              ]
            in
            print_endline
              (json_to_string
                 (stats_doc ~tool:"xanalyze" ~analysis:"batch"
                    ~input:input_label ~extra snap))
        | `Csv -> print_string (snapshot_to_csv snap)));
    if crashed > 0 then exit exit_crashed
    else if partial > 0 then exit exit_partial
  in
  let dir =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory of inputs, dispatched by extension through the \
             analysis registry: $(b,.pl) files to groundness, $(b,.eq) to \
             strictness, $(b,.cfg) to dataflow (or all to the \
             $(b,--analysis) analysis when given).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated corpus benchmark names to add as jobs, or \
             $(b,all) for every benchmark the selected analysis accepts \
             (without $(b,--analysis): the whole registry, each benchmark \
             under its source kind's default analysis).")
  in
  let analysis =
    Arg.(
      value
      & opt (some string) None
      & info [ "analysis" ] ~docv:"NAME"
          ~doc:
            "Run every job under the named registered analysis (see \
             $(b,xanalyze --list-analyses)) instead of dispatching by file \
             extension or corpus kind.")
  in
  let runner =
    let modes = Arg.enum [ ("fork", `Fork); ("domains", `Domains) ] in
    Arg.(
      value & opt modes `Fork
      & info [ "runner" ] ~docv:"RUNNER"
          ~doc:
            "Worker isolation: $(b,fork) (the default) runs every job in \
             its own supervised OS process with watchdog, retries, and \
             crash containment; $(b,domains) runs jobs on a fleet of \
             shared-memory OCaml domains — no fork overhead, deterministic \
             input-order output, budgets still enforced, but no watchdog \
             or retry ladder ($(b,--retries)/$(b,--job-timeout) are \
             ignored).")
  in
  let njobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Concurrent workers (processes or domains).")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"R"
          ~doc:
            "Re-executions of a crashed job after its first attempt; later \
             retries run at a reduced budget (the degradation ladder, \
             docs/ROBUSTNESS.md).")
  in
  let job_timeout =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "job-timeout" ] ~docv:"DUR"
          ~doc:
            "Wall-clock watchdog per job attempt (e.g. $(b,30s)); a worker \
             still running after DUR is SIGKILLed and the attempt counts as \
             a crash.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent result store: completed jobs are saved as crash-safe \
             snapshots under DIR and answered from the store on the next \
             run (warm start).  Corrupt or version-skewed snapshots are \
             detected and silently recomputed.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Supervised batch analysis: every job in its own worker process, \
          with retry/backoff, a crash watchdog, and an optional persistent \
          result store"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "$(b,0) every job completed; $(b,1) input or usage error; \
              $(b,3) at least one job finished with a partial (budget-bounded) \
              result; $(b,4) at least one job crashed after exhausting its \
              retries.";
         ])
    Term.(
      const run $ dir $ corpus $ analysis $ set_args $ runner $ njobs
      $ retries $ job_timeout $ store_dir $ stats_arg $ timeout_arg
      $ max_steps_arg $ max_table_bytes_arg)

(* --- client: talk to a resident praxd daemon ------------------------------ *)

(* The daemon never reads client files: the source text travels in the
   request, so the client resolves paths/bench names locally and the
   daemon's warm cache keys on the bytes.  Exit codes: 0 complete/cached,
   3 partial, 4 crashed, 5 shed (overloaded/rejected/draining — retry
   later), 6 daemon unreachable, 7 daemon broke protocol (malformed /
   truncated / oversized reply). *)

let client_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the praxd daemon.")

let client_retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"R"
        ~doc:
          "Retry a shed ($(b,overloaded)) or unreachable request up to R \
           extra times with capped exponential backoff and deterministic \
           jitter, honoring the daemon's $(b,retry_after_ms) hint.")

let client_backoff_arg =
  Arg.(
    value
    & opt duration_conv 0.2
    & info [ "backoff" ] ~docv:"DUR"
        ~doc:
          "Base backoff before the first retry (e.g. $(b,200ms)); each \
           further retry doubles it, capped at 10s, with \u{00b1}25% \
           deterministic jitter so concurrent clients spread out.")

(* the client must never be taken down by a garbage reply — cap how much
   of one it will buffer before calling it a protocol violation *)
let client_max_response_bytes = 64 * 1024 * 1024

let client_exit_of_error (e : Daemon.Client.error) =
  Printf.eprintf "xanalyze client: %s\n" (Daemon.Client.error_to_string e);
  match e with
  | Daemon.Client.Connect_failed _ -> exit exit_unreachable
  | Daemon.Client.Protocol_error _ -> exit exit_protocol

let client_analyze_cmd =
  let run socket name input bench sets client_id as_json retries backoff =
    let a = find_analysis name in
    let src = source_of ~kind:a.Analysis.kind ~bench input in
    let config = parse_sets ~what:"xanalyze client" sets in
    let req =
      {
        Daemon.Wire.id = Metrics.Int (Unix.getpid ());
        client = client_id;
        op = Daemon.Wire.Analyze { analysis = name; input; source = src; config };
      }
    in
    match
      Daemon.Client.request_with_retries ~socket ~retries ~base:backoff
        ~max_response_bytes:client_max_response_bytes req
    with
    | Error e -> client_exit_of_error e
    | Ok (status, doc, _attempts) -> (
        if as_json then print_endline (Metrics.json_to_string doc)
        else begin
          (match Metrics.member "report" doc with
          | Some report -> (
              match Metrics.member "text" report with
              | Some (Metrics.Str text) -> print_endline text
              | _ -> print_endline (Metrics.json_to_string report))
          | None -> ());
          let say_reason what =
            match Metrics.member "reason" doc with
            | Some (Metrics.Str r) ->
                Printf.eprintf "xanalyze client: %s (%s)\n" what r
            | _ -> Printf.eprintf "xanalyze client: %s\n" what
          in
          match status with
          | "complete" | "cached" | "ok" -> ()
          | "partial" -> say_reason "partial result"
          | "overloaded" -> say_reason "request shed by the daemon"
          | "rejected" -> say_reason "request rejected"
          | "draining" -> say_reason "daemon is draining"
          | "crashed" -> (
              match Metrics.member "error" doc with
              | Some (Metrics.Str e) ->
                  Printf.eprintf "xanalyze client: job crashed: %s\n" e
              | _ -> Printf.eprintf "xanalyze client: job crashed\n")
          | other ->
              Printf.eprintf "xanalyze client: unexpected status %s\n" other
        end;
        match status with
        | "complete" | "cached" | "ok" -> ()
        | "partial" -> exit exit_partial
        | "crashed" -> exit exit_crashed
        | "overloaded" | "rejected" | "draining" -> exit exit_shed
        | "error" | _ -> exit exit_input)
  in
  let aname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ANALYSIS" ~doc:"Registered analysis name.")
  in
  let input =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let client_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "client" ] ~docv:"ID"
          ~doc:
            "Client identity for the daemon's per-client rate limiting \
             (default: the connection).")
  in
  let as_json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw prax.wire response document instead of the \
                report text.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze a file (or $(b,--bench) corpus entry) on the daemon"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "$(b,0) complete or cached; $(b,3) partial (budget-degraded); \
              $(b,4) crashed after retries; $(b,5) shed by admission \
              control (overloaded / rejected / draining) — retry later; \
              $(b,6) daemon unreachable; $(b,7) daemon broke protocol \
              (malformed, truncated, or oversized reply).";
         ])
    Term.(
      const run $ client_socket_arg $ aname $ input $ bench_flag $ set_args
      $ client_id $ as_json $ client_retries_arg $ client_backoff_arg)

let client_batch_cmd =
  let run socket corpus analysis sets client_id as_json retries backoff =
    let analysis = Option.map find_analysis analysis in
    let overrides = parse_sets ~what:"xanalyze client batch" sets in
    if overrides <> [] && analysis = None then begin
      Printf.eprintf "xanalyze client batch: --set requires --analysis\n";
      exit exit_input
    end;
    let specs = batch_jobs_of_corpus ~analysis corpus in
    if specs = [] then begin
      Printf.eprintf "xanalyze client batch: empty corpus spec\n";
      exit exit_input
    end;
    let jobs =
      Array.of_list
        (List.map
           (fun ((a : Analysis.t), input) ->
             let src = source_of ~kind:a.Analysis.kind ~bench:true input in
             {
               Daemon.Client.job_input = a.Analysis.name ^ ":" ^ input;
               job_req =
                 {
                   Daemon.Wire.id = Metrics.Null (* rewritten to the index *);
                   client = client_id;
                   op =
                     Daemon.Wire.Analyze
                       {
                         analysis = a.Analysis.name;
                         input;
                         source = src;
                         config = overrides;
                       };
                 };
             })
           specs)
    in
    match
      Daemon.Client.batch ~socket ~retries ~base:backoff
        ~max_response_bytes:client_max_response_bytes jobs
    with
    | Error e -> client_exit_of_error e
    | Ok outcomes ->
        let count pred = Array.fold_left
            (fun n (o : Daemon.Client.batch_outcome) ->
              if pred o.Daemon.Client.b_status then n + 1 else n)
            0 outcomes
        in
        Array.iter
          (fun (o : Daemon.Client.batch_outcome) ->
            if as_json then
              print_endline
                (Metrics.json_to_string
                   (Metrics.Obj
                      [
                        ("job", Metrics.Str o.Daemon.Client.b_input);
                        ("status", Metrics.Str o.Daemon.Client.b_status);
                        ("attempts", Metrics.Int o.Daemon.Client.b_attempts);
                        ("response", o.Daemon.Client.b_json);
                      ]))
            else
              Printf.printf "%-9s %s (attempts %d)\n"
                o.Daemon.Client.b_status o.Daemon.Client.b_input
                o.Daemon.Client.b_attempts)
          outcomes;
        let n = Array.length outcomes in
        let answered =
          count (fun s ->
              match s with
              | "complete" | "cached" | "partial" -> true
              | _ -> false)
        in
        Printf.eprintf "xanalyze client batch: %d/%d answered with results\n"
          answered n;
        let any s = count (String.equal s) > 0 in
        if any "protocol_error" then exit exit_protocol
        else if any "crashed" then exit exit_crashed
        else if any "error" || any "rejected" then exit exit_input
        else if any "partial" then exit exit_partial
        else if any "overloaded" || any "draining" || any "unanswered" then
          exit exit_shed
  in
  let corpus =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CORPUS"
          ~doc:
            "Comma-separated benchmark names, or $(b,all) for the whole \
             registry (restricted to --analysis's source kind when given).")
  in
  let analysis =
    Arg.(
      value
      & opt (some string) None
      & info [ "analysis"; "a" ] ~docv:"NAME"
          ~doc:
            "Analysis to run on every benchmark (default: each kind's \
             default analysis).")
  in
  let client_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "client" ] ~docv:"ID"
          ~doc:"Client identity for per-client rate limiting.")
  in
  let as_json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "One JSON object per job (job, status, attempts, response) \
             instead of the text summary.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Stream a benchmark corpus through one daemon connection, with \
          per-job retry bookkeeping: shed jobs are retried in \
          backoff-separated rounds, and every job ends with exactly one \
          recorded outcome"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "$(b,0) every job complete or cached; $(b,3) some partial; \
              $(b,4) some crashed; $(b,5) some still shed after retries; \
              $(b,6) daemon unreachable; $(b,7) daemon broke protocol.";
         ])
    Term.(
      const run $ client_socket_arg $ corpus $ analysis $ set_args
      $ client_id $ as_json $ client_retries_arg $ client_backoff_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Talk to a resident praxd analysis daemon over its Unix socket \
          (see $(b,praxd)(1))")
    [ client_analyze_cmd; client_batch_cmd ]

(* --- the registry listing ------------------------------------------------- *)

let list_analyses () =
  List.iter
    (fun (a : Analysis.t) ->
      Printf.printf "%-11s %-13s %-9s %s\n    %s\n" a.Analysis.name
        (Analysis.kind_to_string a.Analysis.kind)
        (String.concat "," a.Analysis.extensions)
        (match a.Analysis.defaults with
        | [] -> "(no configuration)"
        | d -> Analysis.config_to_string d)
        a.Analysis.doc)
    (Analysis.all ())

let default_term =
  let run list =
    if list then `Ok (list_analyses ()) else `Help (`Pager, None)
  in
  let list =
    Arg.(
      value & flag
      & info [ "list-analyses" ]
          ~doc:
            "Print the analysis registry — name, source kind, claimed \
             extensions, configuration defaults — one analysis per two \
             lines, and exit.")
  in
  Term.(ret (const run $ list))

let () =
  (* workload-sized nursery: tabled evaluation is allocation-heavy and
     the default 256k-word minor heap costs 20-30% of the analysis phase
     in collections (docs/PERFORMANCE.md) *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  (* force the shipped analyses into the registry before any lookup *)
  Analyses.ensure ();
  let doc =
    "practical program analysis on a general-purpose tabled logic \
     programming system (PLDI'96 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term
          (Cmd.info "xanalyze" ~doc)
          [
            groundness_cmd; strictness_cmd; depthk_cmd; analyze_cmd; run_cmd;
            eval_cmd; types_cmd; widen_cmd; batch_cmd; client_cmd;
          ]))
