type t = {
  file : string;
  line : int option;
  col : int option;
  msg : string;
}

let make ?line ?col ~file msg = { file; line; col; msg }

let line_col text offset =
  let offset = max 0 (min offset (String.length text)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if text.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, offset - !bol + 1)

let at_offset ~file ~text ~offset msg =
  let line, col = line_col text offset in
  { file; line = Some line; col = Some col; msg }

let to_string d =
  match (d.line, d.col) with
  | Some l, Some c -> Printf.sprintf "%s:%d:%d: %s" d.file l c d.msg
  | Some l, None -> Printf.sprintf "%s:%d: %s" d.file l d.msg
  | _ -> Printf.sprintf "%s: %s" d.file d.msg

let of_exn ~file ~text = function
  | Lexer.Lex_error (msg, offset) -> Some (at_offset ~file ~text ~offset msg)
  | Parser.Parse_error msg -> Some (make ~file msg)
  | _ -> None
