(* Tests for the unified analysis pipeline (docs/ANALYSES.md): the
   registry holds all five shipped analyses; every entry round-trips
   source -> run -> prax.report JSON -> parse; configurations merge
   with unknown keys rejected and malformed values raising
   Config_error; the textual CFG format round-trips; and the
   supervised batch + snapshot store accept every registry entry with
   per-analysis snapshot keys and warm-start hits. *)

module Analysis = Prax_analysis.Analysis
module Analyses = Prax_analyses.Analyses
module Guard = Prax_guard.Guard
module Metrics = Prax_metrics.Metrics
module Registry = Prax_benchdata.Registry
module Serve = Prax_serve.Serve
module Store = Prax_store.Store
module Cfg = Prax_dataflow.Cfg

let () = Analyses.ensure ()
let guard () = Guard.create ~timeout:30. ()

let sample_source (a : Analysis.t) =
  match a.Analysis.kind with
  | Analysis.Logic_program ->
      (Option.get (Registry.find_logic "qsort")).Registry.source
  | Analysis.Fp_program ->
      (Option.get (Registry.find_fp "mergesort")).Registry.source
  | Analysis.Cfg_program ->
      (Option.get (Registry.find_cfg "interp")).Registry.source

(* --- the registry ------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check (list string))
    "registration order"
    [ "groundness"; "strictness"; "depthk"; "gaia"; "dataflow" ]
    (Analysis.names ());
  List.iter
    (fun (ext, expected) ->
      match Analysis.claiming_extension ext with
      | Some a ->
          Alcotest.(check string) (ext ^ " claimant") expected a.Analysis.name
      | None -> Alcotest.failf "no analysis claims %s" ext)
    [ (".pl", "groundness"); (".eq", "strictness"); (".cfg", "dataflow") ];
  Alcotest.(check bool) "unknown name absent" true (Analysis.find "nosuch" = None);
  List.iter
    (fun (a : Analysis.t) ->
      Alcotest.(check bool)
        (a.Analysis.name ^ " findable") true
        (Analysis.find a.Analysis.name == Some a || Analysis.find a.Analysis.name <> None))
    (Analysis.all ())

let test_duplicate_registration_rejected () =
  let a = Option.get (Analysis.find "groundness") in
  match Analysis.register a with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ()

(* --- configurations ----------------------------------------------------- *)

let test_merge_config () =
  let defaults = [ ("k", "2"); ("mode", "fast") ] in
  (match Analysis.merge_config ~defaults [ ("mode", "slow"); ("mode", "x") ] with
  | Ok c ->
      Alcotest.(check (list (pair string string)))
        "defaults order kept, later assignment wins"
        [ ("k", "2"); ("mode", "x") ]
        c
  | Error e -> Alcotest.failf "merge failed: %s" e);
  (match Analysis.merge_config ~defaults [] with
  | Ok c ->
      Alcotest.(check (list (pair string string))) "empty overlay" defaults c
  | Error e -> Alcotest.failf "merge failed: %s" e);
  match Analysis.merge_config ~defaults [ ("bogus", "1") ] with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error e ->
      Alcotest.(check bool) "error names the key" true
        (String.length e > 0
        && String.index_opt e 'b' <> None)

let test_assignments_of_string () =
  (match Analysis.assignments_of_string "k=2, mode=compiled" with
  | Ok c ->
      Alcotest.(check (list (pair string string)))
        "parsed with whitespace"
        [ ("k", "2"); ("mode", "compiled") ]
        c
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Analysis.assignments_of_string "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty string parsed non-empty"
  | Error e -> Alcotest.failf "empty string rejected: %s" e);
  match Analysis.assignments_of_string "novalue" with
  | Ok _ -> Alcotest.fail "missing = accepted"
  | Error _ -> ()

(* each driver validates its own values: malformed ones surface as
   Config_error, the condition front-ends map to an input error *)
let test_config_errors () =
  let expect_config_error name cfg =
    let a = Option.get (Analysis.find name) in
    match Analysis.run a ~config:cfg ~guard:(guard ()) (sample_source a) with
    | _ -> Alcotest.failf "%s accepted %s" name (Analysis.config_to_string cfg)
    | exception Analysis.Config_error _ -> ()
  in
  expect_config_error "groundness" [ ("mode", "weird") ];
  expect_config_error "strictness" [ ("supplementary", "perhaps") ];
  expect_config_error "depthk" [ ("k", "many") ];
  expect_config_error "depthk" [ ("k", "-1") ];
  expect_config_error "gaia" [ ("backend", "quantum") ];
  (* unknown keys are rejected at merge time by Analysis.run *)
  let a = Option.get (Analysis.find "dataflow") in
  match Analysis.run a ~config:[ ("k", "1") ] ~guard:(guard ()) (sample_source a) with
  | _ -> Alcotest.fail "dataflow accepted a config key it does not declare"
  | exception Analysis.Config_error _ -> ()

(* --- report round-trip for every registered analysis -------------------- *)

let feq msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_report_roundtrip () =
  List.iter
    (fun (a : Analysis.t) ->
      let name = a.Analysis.name in
      let rep = Analysis.run a ~guard:(guard ()) (sample_source a) in
      Alcotest.(check string) (name ^ ": report names itself") name
        rep.Analysis.analysis;
      Alcotest.(check bool)
        (name ^ ": effective config is the defaults")
        true
        (rep.Analysis.config = a.Analysis.defaults);
      Alcotest.(check bool)
        (name ^ ": human payload present")
        true
        (String.length rep.Analysis.payload_text > 0);
      Alcotest.(check bool)
        (name ^ ": clause count positive")
        true (rep.Analysis.clause_count > 0);
      Alcotest.(check bool)
        (name ^ ": completes on the sample")
        true
        (rep.Analysis.status = Guard.Complete);
      let input = "sample" ^ List.hd a.Analysis.extensions in
      let str =
        Metrics.json_to_string (Analysis.report_to_json ~input rep)
      in
      match Analysis.report_of_json (Metrics.json_of_string str) with
      | Error e -> Alcotest.failf "%s: report_of_json: %s" name e
      | Ok p ->
          Alcotest.(check string) (name ^ ": analysis survives") name
            p.Analysis.p_analysis;
          Alcotest.(check (option string))
            (name ^ ": input survives")
            (Some input) p.Analysis.p_input;
          Alcotest.(check string) (name ^ ": status wire string") "complete"
            p.Analysis.p_status;
          Alcotest.(check (list (pair string string)))
            (name ^ ": config survives")
            rep.Analysis.config p.Analysis.p_config;
          Alcotest.(check int)
            (name ^ ": table bytes survive")
            rep.Analysis.table_bytes p.Analysis.p_table_bytes;
          Alcotest.(check int)
            (name ^ ": clause count survives")
            rep.Analysis.clause_count p.Analysis.p_clause_count;
          Alcotest.(check (option int))
            (name ^ ": source lines survive")
            rep.Analysis.source_lines p.Analysis.p_source_lines;
          Alcotest.(check string)
            (name ^ ": rendered text survives")
            rep.Analysis.payload_text p.Analysis.p_text;
          feq (name ^ ": preproc survives") rep.Analysis.phases.Analysis.preproc
            p.Analysis.p_phases.Analysis.preproc;
          feq (name ^ ": analysis phase survives")
            rep.Analysis.phases.Analysis.analysis
            p.Analysis.p_phases.Analysis.analysis;
          feq (name ^ ": collection survives")
            rep.Analysis.phases.Analysis.collection
            p.Analysis.p_phases.Analysis.collection;
          (match (rep.Analysis.engine, p.Analysis.p_engine) with
          | None, None -> ()
          | Some e, Some pe ->
              Alcotest.(check int)
                (name ^ ": engine answers survive")
                e.Analysis.answers pe.Analysis.answers;
              Alcotest.(check int)
                (name ^ ": engine entries survive")
                e.Analysis.table_entries pe.Analysis.table_entries
          | Some _, None | None, Some _ ->
              Alcotest.failf "%s: engine counts dropped or invented" name);
          Alcotest.(check bool)
            (name ^ ": result payload survives")
            true
            (p.Analysis.p_result = rep.Analysis.payload_json))
    (Analysis.all ())

let test_report_of_json_rejects () =
  let reject what doc =
    match Analysis.report_of_json doc with
    | Ok _ -> Alcotest.failf "accepted %s" what
    | Error _ -> ()
  in
  reject "a non-object" (Metrics.Str "hi");
  reject "a foreign schema"
    (Metrics.Obj
       [ ("schema", Metrics.Str "prax.stats"); ("schema_version", Metrics.Int 1) ]);
  let a = Option.get (Analysis.find "gaia") in
  let rep = Analysis.run a ~guard:(guard ()) (sample_source a) in
  match Analysis.report_to_json rep with
  | Metrics.Obj fields ->
      reject "a future schema version"
        (Metrics.Obj
           (List.map
              (fun (k, v) ->
                if String.equal k "schema_version" then (k, Metrics.Int 999)
                else (k, v))
              fields))
  | _ -> Alcotest.fail "report_to_json is not an object"

(* --- the textual CFG format -------------------------------------------- *)

let test_cfg_roundtrip () =
  let p = Cfg.parse Prax_benchdata.Cfg_programs.interp in
  Alcotest.(check int) "two procedures" 2 (List.length p);
  let printed = Cfg.to_source p in
  let p2 = Cfg.parse printed in
  Alcotest.(check string) "parse . to_source is a fixpoint" printed
    (Cfg.to_source p2)

let test_cfg_parse_errors () =
  let rejects what src =
    match Cfg.parse src with
    | _ -> Alcotest.failf "parsed %s" what
    | exception Cfg.Parse_error _ -> ()
  in
  rejects "an empty program" "";
  rejects "a node outside a proc" "node 0 entry\n";
  rejects "a proc without exit" "proc p\nnode 0 entry\nnode 1 skip\nedge 0 1\n";
  rejects "two entries" "proc p\nnode 0 entry\nnode 1 entry\nnode 2 exit\n";
  rejects "an unknown statement" "proc p\nnode 0 entry\nnode 1 frobnicate\n";
  rejects "a malformed edge" "proc p\nnode 0 entry\nnode 1 exit\nedge 0\n"

(* --- batch + store accept every registry entry -------------------------- *)

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "prax-analysis-test-%d-%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff))
  in
  let t = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f t)

let quick_config =
  {
    Serve.default_config with
    Serve.jobs = 2;
    retries = 1;
    backoff_base = 0.01;
    backoff_factor = 2.0;
    budget = Guard.spec ~timeout:30. ();
  }

(* jobs are analysis names; each runs its analysis on the kind's sample
   source, exactly the xanalyze batch shape *)
let test_batch_store_every_analysis () =
  with_store (fun store ->
      let jobs = Analysis.names () in
      let key_of job =
        let a = Option.get (Analysis.find job) in
        {
          Store.analysis = a.Analysis.name;
          source_digest = Store.digest_source (sample_source a);
          config = Analysis.config_to_string a.Analysis.defaults;
          schema_version = Analysis.report_schema_version;
        }
      in
      (* distinct snapshot keys per analysis, even for analyses sharing
         a source (groundness/depthk/gaia all sample qsort) *)
      Alcotest.(check int) "snapshot keys distinct"
        (List.length jobs)
        (List.length
           (List.sort_uniq compare
              (List.map (fun j -> Store.path_of store (key_of j)) jobs)));
      let worker ~job ~attempt:_ ~guard =
        let a = Option.get (Analysis.find job) in
        let rep = Analysis.run a ~guard (sample_source a) in
        let payload =
          Metrics.json_to_string (Analysis.report_to_json ~input:"sample" rep)
        in
        match rep.Analysis.status with
        | Guard.Complete -> (Serve.Complete, payload)
        | Guard.Partial { reason; _ } ->
            (Serve.Partial_result (Guard.reason_to_string reason), payload)
      in
      let cached ~job = Store.load store (key_of job) in
      let persist ~job ~payload = Store.save store (key_of job) payload in
      Metrics.reset ();
      let cold =
        Serve.run_batch ~config:quick_config ~cached ~persist ~worker jobs
      in
      Alcotest.(check (list string)) "cold: all jobs reported" jobs
        (List.map (fun r -> r.Serve.job) cold);
      List.iter
        (fun r ->
          Alcotest.(check string)
            (r.Serve.job ^ " cold outcome")
            "complete"
            (Serve.outcome_class r.Serve.outcome))
        cold;
      Alcotest.(check int) "cold: one snapshot write per analysis"
        (List.length jobs)
        (Metrics.counter_value "store.writes");
      Metrics.reset ();
      let warm =
        Serve.run_batch ~config:quick_config ~cached ~persist ~worker jobs
      in
      Alcotest.(check int) "warm: every job a store hit" (List.length jobs)
        (Metrics.counter_value "store.hits");
      Alcotest.(check int) "warm: no forks"
        0
        (Metrics.counter_value "serve.workers_spawned");
      List.iter
        (fun r ->
          match r.Serve.outcome with
          | Serve.Done { from_cache = true; payload; _ } -> (
              (* the snapshot is the prax.report document itself *)
              match
                Analysis.report_of_json (Metrics.json_of_string payload)
              with
              | Ok p ->
                  Alcotest.(check string)
                    (r.Serve.job ^ " snapshot names its analysis")
                    r.Serve.job p.Analysis.p_analysis
              | Error e ->
                  Alcotest.failf "%s: snapshot not a prax.report: %s"
                    r.Serve.job e)
          | _ -> Alcotest.failf "%s not answered from cache" r.Serve.job)
        warm;
      Metrics.reset ())

let () =
  Alcotest.run "analysis"
    [
      ( "registry",
        [
          Alcotest.test_case "five analyses, ordered" `Quick test_registry;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_registration_rejected;
        ] );
      ( "config",
        [
          Alcotest.test_case "merge" `Quick test_merge_config;
          Alcotest.test_case "assignments" `Quick test_assignments_of_string;
          Alcotest.test_case "malformed values" `Quick test_config_errors;
        ] );
      ( "report",
        [
          Alcotest.test_case "round-trip, every analysis" `Quick
            test_report_roundtrip;
          Alcotest.test_case "rejects foreign documents" `Quick
            test_report_of_json_rejects;
        ] );
      ( "cfg-format",
        [
          Alcotest.test_case "round-trip" `Quick test_cfg_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_cfg_parse_errors;
        ] );
      ( "batch-store",
        [
          Alcotest.test_case "every analysis batches and warm-starts" `Quick
            test_batch_store_every_analysis;
        ] );
    ]
