(** Encoding of dataflow problems as logic programs, following the
    formulation the paper cites from Reps ("demand interprocedural
    program analysis using logic databases", Section 7): the CFG becomes
    facts, the analysis becomes a few Horn rules, and a *demand* (a
    single dataflow query) is a goal solved goal-directed by the tabled
    engine — the call table restricting work to what the demand needs.

    Supported analyses:
    - reaching definitions: [reach(def(Var, Node), N)];
    - live variables: [livein(Var, N)] / [liveout(Var, N)];
    - def-use chains: [du(def(Var, D), U)].

    Negation ("definition not killed here") is precomputed into [pres]
    facts, keeping the program definite, as Datalog encodings do. *)

open Prax_logic

let int i = Term.int i
let atom = Term.atom

let def_term var node = Term.mkl "def" [ atom var; int node ]

(* All program variables mentioned anywhere. *)
let variables (p : Cfg.program) : string list =
  List.concat_map
    (fun (pr : Cfg.proc) ->
      List.concat_map
        (fun (n : Cfg.node) -> Cfg.defs n.Cfg.stmt @ Cfg.uses n.Cfg.stmt)
        pr.Cfg.nodes)
    p
  |> List.sort_uniq compare

(** Facts describing the program: [edge/2] (including interprocedural
    call and return edges), [gen/2], [use/2], [pres/2]. *)
let facts (p : Cfg.program) : Parser.clause list =
  let fact head = { Parser.head; body = [] } in
  let vars = variables p in
  let intra =
    List.concat_map
      (fun (pr : Cfg.proc) ->
        List.concat_map
          (fun (m, n) ->
            (* a call node diverts flow through the callee *)
            match (Cfg.node_of pr m).Cfg.stmt with
            | Cfg.Call callee -> (
                match Cfg.find_proc p callee with
                | Some target ->
                    [
                      fact (Term.mkl "edge" [ int m; int target.Cfg.entry ]);
                      fact (Term.mkl "edge" [ int target.Cfg.exit; int n ]);
                    ]
                | None -> [ fact (Term.mkl "edge" [ int m; int n ]) ])
            | _ -> [ fact (Term.mkl "edge" [ int m; int n ]) ])
          pr.Cfg.edges)
      p
  in
  let per_node =
    List.concat_map
      (fun (pr : Cfg.proc) ->
        List.concat_map
          (fun (n : Cfg.node) ->
            let gens =
              List.map
                (fun v ->
                  fact (Term.mkl "gen" [ int n.Cfg.id; def_term v n.Cfg.id ]))
                (Cfg.defs n.Cfg.stmt)
            in
            let uses =
              List.map
                (fun v -> fact (Term.mkl "use" [ int n.Cfg.id; atom v ]))
                (Cfg.uses n.Cfg.stmt)
            in
            (* pres(N, V): node N does not (re)define V; and ndef likewise
               for liveness *)
            let killed = Cfg.defs n.Cfg.stmt in
            let pres =
              List.concat_map
                (fun v ->
                  if List.mem v killed then []
                  else
                    [
                      fact (Term.mkl "pres" [ int n.Cfg.id; atom v ]);
                      fact (Term.mkl "ndef" [ int n.Cfg.id; atom v ]);
                    ])
                vars
            in
            gens @ uses @ pres)
          pr.Cfg.nodes)
      p
  in
  intra @ per_node

(** The analysis rules, shared by every demand. *)
let rules : Parser.clause list =
  Parser.parse_clauses
    {|
% a definition def(V, M) reaches node N along def-clear paths
reach(def(V, M), N) :- gen(M, def(V, M)), edge(M, N).
reach(def(V, M), N) :- reach(def(V, M), P), pres(P, V), edge(P, N).

% live variables, backward
livein(V, N) :- use(N, V).
livein(V, N) :- liveout(V, N), ndef(N, V).
liveout(V, N) :- edge(N, M), livein(V, M).

% def-use chains: the definition reaches a node that uses the variable
du(def(V, M), U) :- reach(def(V, M), U), use(U, V).
|}

(** The whole logic program for [p]. *)
let program (p : Cfg.program) : Parser.clause list = facts p @ rules
